#include "sim/tile.h"

#include <stdexcept>

namespace mpipu {
namespace {

TileConfig make_tile(std::string name, int c, int k, int w, int precision,
                     int cluster) {
  TileConfig t;
  t.name = std::move(name);
  t.c_unroll = c;
  t.k_unroll = k;
  t.ipus_per_cluster = cluster;
  t.datapath.n_inputs = c;
  t.datapath.adder_tree_width = w;
  t.datapath.software_precision = precision;
  t.datapath.multi_cycle = w < precision + 10;  // single cycle once the window
                                                // covers every unmasked shift
  // §3.2 partitions: only occupied alignment bands cost cycles.
  t.datapath.skip_empty_bands = true;
  t.datapath.accumulator.t = ceil_log2(c);
  return t;
}

}  // namespace

void TileConfig::validate() const {
  if (c_unroll < 1 || k_unroll < 1 || h_unroll < 1 || w_unroll < 1) {
    throw std::invalid_argument(
        "TileConfig '" + name + "': unrolls must be positive (c=" +
        std::to_string(c_unroll) + ", k=" + std::to_string(k_unroll) +
        ", h=" + std::to_string(h_unroll) + ", w=" +
        std::to_string(w_unroll) + ")");
  }
  if (num_tiles < 1) {
    throw std::invalid_argument("TileConfig '" + name +
                                "': num_tiles must be >= 1, got " +
                                std::to_string(num_tiles));
  }
  if (input_buffer_depth < 1) {
    throw std::invalid_argument("TileConfig '" + name +
                                "': input_buffer_depth must be >= 1, got " +
                                std::to_string(input_buffer_depth));
  }
  if (ipus_per_cluster < 1 || ipus_per_tile() % ipus_per_cluster != 0) {
    // The historical failure mode: under NDEBUG the num_clusters() assert
    // vanished and integer division silently dropped the remainder IPUs --
    // the sim modeled a smaller tile than configured.
    throw std::invalid_argument(
        "TileConfig '" + name + "': ipus_per_cluster (" +
        std::to_string(ipus_per_cluster) + ") must divide ipus_per_tile (" +
        std::to_string(ipus_per_tile()) +
        ") -- clusters partition the tile's IPUs exactly");
  }
}

TileConfig small_tile(int adder_tree_width, int software_precision, int ipus_per_cluster) {
  return make_tile("small", 8, 8, adder_tree_width, software_precision,
                   ipus_per_cluster);
}

TileConfig big_tile(int adder_tree_width, int software_precision, int ipus_per_cluster) {
  return make_tile("big", 16, 16, adder_tree_width, software_precision,
                   ipus_per_cluster);
}

TileConfig baseline1() {
  TileConfig t = small_tile(38, 28, 32);
  t.name = "baseline1";
  t.datapath.multi_cycle = false;
  return t;
}

TileConfig baseline2() {
  TileConfig t = big_tile(38, 28, 64);
  t.name = "baseline2";
  t.datapath.multi_cycle = false;
  return t;
}

}  // namespace mpipu
