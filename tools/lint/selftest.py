#!/usr/bin/env python3
"""Self-test for tools/lint/lint.py: prove every rule actually fires.

Builds a synthetic repo tree in a temp dir, seeds exactly one violation per
rule (plus a clean control), and asserts each rule reports precisely its own
violation.  A rule that stops matching -- a typo in a regex, a renamed
directory -- fails this test instead of going silently dead.  Runs as the
`lint_selftest` ctest.
"""

import json
import shutil
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import lint  # noqa: E402


def make_tree(root):
    """A minimal clean repo skeleton the rules accept."""
    (root / "src" / "common").mkdir(parents=True)
    (root / "src" / "serve").mkdir(parents=True)
    (root / "src" / "core" / "simd").mkdir(parents=True)
    (root / "tools" / "lint").mkdir(parents=True)

    (root / "src" / "common" / "annotated_mutex.h").write_text(
        "#pragma once\n#include <mutex>\nclass Mutex { std::mutex mu_; };\n")
    (root / "src" / "serve" / "fault.h").write_text(
        "#pragma once\n"
        "// lint:allow-throw -- config-parse error, off the request path\n"
        "inline void parse_fail() { throw 1; }\n")
    (root / "src" / "core" / "simd" / "kernels_scalar.cpp").write_text(
        "// scalar oracle\nvoid k(float* p, int n) {\n"
        "  for (int i = 0; i < n; ++i) p[i] += 1.0f;\n}\n")
    (root / "tools" / "lint" / "scalar_oracle.sha256").write_text(
        lint.scalar_oracle_digest(root) + "  kernels_scalar.cpp\n")

    (root / "BENCH_accuracy.json").write_text(json.dumps(
        {"bench": "accuracy", "points": [{"conserved": True}]}))
    (root / "BENCH_conv.json").write_text(json.dumps(
        {"bench": "conv", "workload": {}, "schemes": []}))
    (root / "BENCH_serving.json").write_text(json.dumps(
        {"bench": "serving", "sections": {}, "bit_identical": True}))
    (root / "BENCH_server.json").write_text(json.dumps(
        {"bench": "server", "saturating": {}, "bit_identical": True,
         "soak": {}}))
    (root / "BENCH_tiles.json").write_text(json.dumps(
        {"bench": "design_space_explorer_tiles", "network": "resnet18",
         "configs": []}))


def expect(name, violations, rule, path_fragment):
    """Assert exactly one violation, from `rule`, naming `path_fragment`."""
    assert len(violations) == 1, (
        f"{name}: expected exactly 1 violation, got "
        f"{[str(v) for v in violations]}")
    v = violations[0]
    assert v.rule == rule, f"{name}: fired as {v.rule}, wanted {rule}"
    assert path_fragment in str(v.path), (
        f"{name}: fired on {v.path}, wanted ...{path_fragment}...")
    print(f"  ok: {name} -> {v}")


def in_fresh_tree(seed_fn):
    tmp = Path(tempfile.mkdtemp(prefix="lint_selftest_"))
    try:
        make_tree(tmp)
        seed_fn(tmp)
        return lint.run_all(tmp)
    finally:
        shutil.rmtree(tmp)


def main():
    # Control: the clean skeleton passes every rule.
    clean = in_fresh_tree(lambda root: None)
    assert not clean, (
        "control tree must be clean, got: " + "; ".join(map(str, clean)))
    print("  ok: clean control tree passes all rules")

    # raw-mutex: a std::mutex outside annotated_mutex.h.
    expect("raw-mutex", in_fresh_tree(lambda root: (
        (root / "src" / "serve" / "bad_mutex.h").write_text(
            "#pragma once\n#include <cstdint>\n"
            "struct S { std::mutex mu_; };\n")
    )), "raw-mutex", "bad_mutex.h")

    # raw-mutex must NOT fire on the token in a comment or a string.
    commented = in_fresh_tree(lambda root: (
        (root / "src" / "serve" / "ok_comment.h").write_text(
            "#pragma once\n// std::mutex is banned here\n"
            "inline const char* kMsg = \"std::lock_guard\";\n")
    ))
    assert not commented, (
        "raw-mutex fired on comment/string text: "
        + "; ".join(map(str, commented)))
    print("  ok: raw-mutex ignores comments and string literals")

    # serve-throw: an unmarked throw in src/serve.
    expect("serve-throw", in_fresh_tree(lambda root: (
        (root / "src" / "serve" / "bad_throw.h").write_text(
            "#pragma once\ninline void f() { throw 42; }\n")
    )), "serve-throw", "bad_throw.h")

    # kernel-purity: an allocation inside a kernel TU.  Also perturbs the
    # oracle hash, so re-baseline first to isolate the purity rule.
    def seed_kernel(root):
        p = root / "src" / "core" / "simd" / "kernels_scalar.cpp"
        p.write_text(p.read_text() + "void bad() { auto* q = new int[4]; }\n")
        (root / "tools" / "lint" / "scalar_oracle.sha256").write_text(
            lint.scalar_oracle_digest(root) + "  kernels_scalar.cpp\n")
    expect("kernel-purity", in_fresh_tree(seed_kernel),
           "kernel-purity", "kernels_scalar.cpp")

    # scalar-oracle: oracle edited, baseline not updated.
    expect("scalar-oracle", in_fresh_tree(lambda root: (
        (root / "src" / "core" / "simd" / "kernels_scalar.cpp").write_text(
            "// \"cleaned up\" oracle\nvoid k(float* p, int n) {}\n")
    )), "scalar-oracle", "kernels_scalar.cpp")

    # include-hygiene: a quoted include that does not resolve under src/.
    expect("include-hygiene", in_fresh_tree(lambda root: (
        (root / "src" / "serve" / "bad_include.h").write_text(
            "#pragma once\n#include \"no/such/header.h\"\n")
    )), "include-hygiene", "bad_include.h")

    # include-hygiene: a header missing #pragma once.
    expect("include-hygiene (pragma once)", in_fresh_tree(lambda root: (
        (root / "src" / "serve" / "no_pragma.h").write_text(
            "#ifndef NO_PRAGMA_H\n#define NO_PRAGMA_H\n#endif\n")
    )), "include-hygiene", "no_pragma.h")

    # bench-schema: a committed artifact recording a broken invariant.
    expect("bench-schema", in_fresh_tree(lambda root: (
        (root / "BENCH_server.json").write_text(json.dumps(
            {"bench": "server", "saturating": {},
             "bit_identical": False, "soak": {}}))
    )), "bench-schema", "BENCH_server.json")

    print("lint_selftest: every rule fires on its seeded violation.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
