#!/usr/bin/env python3
"""Repo-invariant linter: the contracts no compiler flag can check.

Dependency-free (stdlib only).  Each rule is a function returning a list of
Violation; `python3 tools/lint/lint.py` runs them all against the repo and
exits nonzero on any hit.  tools/lint/rules.md documents every rule, its
rationale, and its suppression/update path; tools/lint/selftest.py feeds
each rule a deliberate violation and asserts it fires (wired into ctest, so
tier-1 runs both).

Rules:
  raw-mutex        no std::mutex/condvar primitives in src/ outside
                   common/annotated_mutex.h (everything must go through the
                   thread-safety-annotated wrappers)
  serve-throw      every `throw` in src/serve carries a `lint:allow-throw`
                   marker naming why it is off the request path
  kernel-purity    no throw/try/heap allocation in src/core/simd/kernels_*.cpp
  scalar-oracle    kernels_scalar.cpp matches the committed content hash
                   (update only via --update-scalar-baseline)
  include-hygiene  quoted includes in src/ resolve from the src/ root, no
                   `..` segments, every src/ header opens with #pragma once
  bench-schema     the committed BENCH_*.json artifacts parse, carry their
                   contract keys, and never commit bit_identical/conserved
                   == false
"""

import hashlib
import json
import re
import sys
from pathlib import Path


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line  # 1-based, or 0 for whole-file findings
        self.message = message

    def __str__(self):
        loc = f"{self.path}:{self.line}" if self.line else str(self.path)
        return f"{loc}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line structure.

    Good enough for token scans: handles //, /* */, "..." and '...' with
    escapes.  Raw strings are not used in this repo; a stray one degrades to
    over-stripping, never to a missed token.
    """
    out = []
    i, n = 0, len(text)
    mode = None  # None | 'line' | 'block' | 'dq' | 'sq'
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
            elif c == '"':
                mode = "dq"
                out.append(" ")
                i += 1
            elif c == "'":
                mode = "sq"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif mode == "line":
            if c == "\n":
                mode = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # dq / sq
            if c == "\\":
                out.append("  ")
                i += 2
            elif (mode == "dq" and c == '"') or (mode == "sq" and c == "'"):
                mode = None
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def _src_files(root, suffixes=(".h", ".cpp")):
    src = root / "src"
    return sorted(p for p in src.rglob("*") if p.suffix in suffixes)


# --------------------------------------------------------------------------
# Rule: raw-mutex
# --------------------------------------------------------------------------

RAW_MUTEX_TOKENS = [
    "std::mutex",
    "std::recursive_mutex",
    "std::shared_mutex",
    "std::timed_mutex",
    "std::condition_variable",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
]

ANNOTATED_MUTEX_HEADER = Path("src/common/annotated_mutex.h")


def check_raw_mutex(root):
    violations = []
    for path in _src_files(root):
        rel = path.relative_to(root)
        if rel == ANNOTATED_MUTEX_HEADER:
            continue  # the one place the std primitives may appear
        code = strip_comments_and_strings(path.read_text())
        for lineno, line in enumerate(code.splitlines(), 1):
            for tok in RAW_MUTEX_TOKENS:
                if tok in line:
                    violations.append(Violation(
                        "raw-mutex", rel, lineno,
                        f"{tok} bypasses the thread-safety-annotated wrappers"
                        " -- use Mutex/CondVar/MutexLock from"
                        " common/annotated_mutex.h"))
    return violations


# --------------------------------------------------------------------------
# Rule: serve-throw
# --------------------------------------------------------------------------

THROW_MARKER = "lint:allow-throw"


def check_serve_throw(root):
    violations = []
    serve = root / "src" / "serve"
    for path in sorted(serve.rglob("*")):
        if path.suffix not in (".h", ".cpp"):
            continue
        rel = path.relative_to(root)
        raw_lines = path.read_text().splitlines()
        code_lines = strip_comments_and_strings(path.read_text()).splitlines()
        for lineno, line in enumerate(code_lines, 1):
            if not re.search(r"\bthrow\b", line):
                continue
            here = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
            above = raw_lines[lineno - 2] if lineno >= 2 else ""
            if THROW_MARKER in here or THROW_MARKER in above:
                continue
            violations.append(Violation(
                "serve-throw", rel, lineno,
                "throw in src/serve without a 'lint:allow-throw -- <why>'"
                " marker: the request path sheds typed values, it never"
                " throws (README 'Failure semantics')"))
    return violations


# --------------------------------------------------------------------------
# Rule: kernel-purity
# --------------------------------------------------------------------------

KERNEL_BANNED = [
    (r"\bthrow\b", "throw"),
    (r"\btry\b", "try"),
    (r"\bnew\b", "operator new"),
    (r"\bmalloc\s*\(", "malloc"),
    (r"\bcalloc\s*\(", "calloc"),
    (r"\brealloc\s*\(", "realloc"),
    (r"\bstd::vector\b", "std::vector"),
    (r"\bstd::string\b", "std::string"),
    (r"\.push_back\s*\(", "push_back"),
    (r"\.emplace_back\s*\(", "emplace_back"),
    (r"\.resize\s*\(", "resize"),
    (r"\.reserve\s*\(", "reserve"),
]


def check_kernel_purity(root):
    violations = []
    simd = root / "src" / "core" / "simd"
    for path in sorted(simd.glob("kernels_*.cpp")):
        rel = path.relative_to(root)
        code = strip_comments_and_strings(path.read_text())
        for lineno, line in enumerate(code.splitlines(), 1):
            for pattern, name in KERNEL_BANNED:
                if re.search(pattern, line):
                    violations.append(Violation(
                        "kernel-purity", rel, lineno,
                        f"{name} in a SIMD kernel TU: kernels are"
                        " allocation-free and exception-free by contract"
                        " (callers own every plane)"))
    return violations


# --------------------------------------------------------------------------
# Rule: scalar-oracle
# --------------------------------------------------------------------------

SCALAR_ORACLE = Path("src/core/simd/kernels_scalar.cpp")
SCALAR_BASELINE = Path("tools/lint/scalar_oracle.sha256")


def scalar_oracle_digest(root):
    return hashlib.sha256((root / SCALAR_ORACLE).read_bytes()).hexdigest()


def check_scalar_oracle(root):
    baseline_path = root / SCALAR_BASELINE
    if not baseline_path.exists():
        return [Violation(
            "scalar-oracle", SCALAR_BASELINE, 0,
            "committed baseline missing -- run"
            " 'python3 tools/lint/lint.py --update-scalar-baseline'")]
    baseline = baseline_path.read_text().split()[0]
    actual = scalar_oracle_digest(root)
    if actual != baseline:
        return [Violation(
            "scalar-oracle", SCALAR_ORACLE, 0,
            "kernels_scalar.cpp changed but the committed baseline did not:"
            " the scalar oracle is kept VERBATIM (every vector backend is"
            " diffed against it bit-for-bit).  If the change is deliberate,"
            " re-run the kernel+datapath differential suite and then"
            " 'python3 tools/lint/lint.py --update-scalar-baseline'")]
    return []


# --------------------------------------------------------------------------
# Rule: include-hygiene
# --------------------------------------------------------------------------

def check_include_hygiene(root):
    violations = []
    src = root / "src"
    for path in _src_files(root):
        rel = path.relative_to(root)
        text = path.read_text()
        if path.suffix == ".h":
            # #pragma once must be the first non-comment directive.
            code = strip_comments_and_strings(text)
            first = next((ln.strip() for ln in code.splitlines()
                          if ln.strip()), "")
            if first != "#pragma once":
                violations.append(Violation(
                    "include-hygiene", rel, 1,
                    "src/ header does not open with #pragma once"))
        for lineno, line in enumerate(text.splitlines(), 1):
            m = re.match(r'\s*#\s*include\s+"([^"]+)"', line)
            if not m:
                continue
            inc = m.group(1)
            if ".." in inc.split("/"):
                violations.append(Violation(
                    "include-hygiene", rel, lineno,
                    f'"{inc}": relative ".." includes are banned -- include'
                    " from the src/ root (target_include_directories adds"
                    " it)"))
            elif not (src / inc).exists():
                violations.append(Violation(
                    "include-hygiene", rel, lineno,
                    f'"{inc}" does not resolve from the src/ root: quoted'
                    " includes are reserved for repo-internal headers"
                    " (angle-bracket the system ones)"))
    return violations


# --------------------------------------------------------------------------
# Rule: bench-schema
# --------------------------------------------------------------------------

BENCH_REQUIRED_KEYS = {
    "BENCH_accuracy.json": ["bench", "points"],
    "BENCH_conv.json": ["bench", "workload", "schemes"],
    "BENCH_serving.json": ["bench", "sections", "bit_identical"],
    "BENCH_server.json": ["bench", "saturating", "bit_identical", "soak"],
    "BENCH_tiles.json": ["bench", "network", "configs"],
}

BENCH_INVARIANT_FLAGS = ("bit_identical", "conserved")


def _walk_json(value, path=""):
    if isinstance(value, dict):
        for k, v in value.items():
            yield from _walk_json(v, f"{path}.{k}" if path else k)
    elif isinstance(value, list):
        for i, v in enumerate(value):
            yield from _walk_json(v, f"{path}[{i}]")
    else:
        yield path, value


def check_bench_schema(root):
    violations = []
    for name, required in BENCH_REQUIRED_KEYS.items():
        path = root / name
        rel = Path(name)
        if not path.exists():
            violations.append(Violation(
                "bench-schema", rel, 0,
                "committed bench artifact is missing"))
            continue
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as e:
            violations.append(Violation(
                "bench-schema", rel, e.lineno, f"not valid JSON: {e.msg}"))
            continue
        if not isinstance(doc, dict):
            violations.append(Violation(
                "bench-schema", rel, 0, "top level must be a JSON object"))
            continue
        for key in required:
            if key not in doc:
                violations.append(Violation(
                    "bench-schema", rel, 0,
                    f"missing required top-level key '{key}'"))
        for keypath, value in _walk_json(doc):
            leaf = keypath.rsplit(".", 1)[-1]
            if leaf in BENCH_INVARIANT_FLAGS and value is False:
                violations.append(Violation(
                    "bench-schema", rel, 0,
                    f"{keypath} is false: a bench artifact recording a"
                    " broken invariant must never be committed"))
    return violations


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

ALL_RULES = [
    check_raw_mutex,
    check_serve_throw,
    check_kernel_purity,
    check_scalar_oracle,
    check_include_hygiene,
    check_bench_schema,
]


def run_all(root):
    violations = []
    for rule in ALL_RULES:
        violations.extend(rule(root))
    return violations


def main(argv):
    root = Path(__file__).resolve().parents[2]
    args = list(argv[1:])
    if "--root" in args:
        i = args.index("--root")
        root = Path(args[i + 1]).resolve()
        del args[i:i + 2]
    if args == ["--update-scalar-baseline"]:
        digest = scalar_oracle_digest(root)
        (root / SCALAR_BASELINE).write_text(
            f"{digest}  {SCALAR_ORACLE.name}\n")
        print(f"scalar-oracle baseline updated: {digest}")
        return 0
    if args:
        print(f"unknown arguments: {args}", file=sys.stderr)
        print(__doc__, file=sys.stderr)
        return 2
    violations = run_all(root)
    for v in violations:
        print(v)
    if violations:
        print(f"\ntools/lint: {len(violations)} violation(s)."
              "  See tools/lint/rules.md for rationale and fix paths.",
              file=sys.stderr)
        return 1
    print("tools/lint: all rules clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
