#!/usr/bin/env python3
"""Prove clang's thread-safety analysis rejects the negative TU.

Two runs of tests/compile_fail/thread_safety_negative.cpp under
`clang++ -fsyntax-only -Wthread-safety -Werror`:

  1. control: -DMPIPU_TS_POSITIVE (violations compiled out) must PASS --
     include path and flags are good, so a red negative run below means the
     ANALYSIS fired, not the toolchain.
  2. negative: violations in, compile must FAIL, and the diagnostics must
     mention -Wthread-safety.

Exit 0 when both hold, 1 on any mismatch, 77 (ctest SKIP_RETURN_CODE) when
no clang++ is on PATH -- GCC does not implement the analysis, so there is
nothing to prove locally; the static-analysis CI job always runs this.
"""

import shutil
import subprocess
import sys
from pathlib import Path

SKIP = 77

NEGATIVE_TU = Path("tests/compile_fail/thread_safety_negative.cpp")


def main(argv):
    root = Path(__file__).resolve().parents[2]
    if "--root" in argv:
        root = Path(argv[argv.index("--root") + 1]).resolve()

    clang = shutil.which("clang++")
    if clang is None:
        print("SKIP: no clang++ on PATH (thread-safety analysis is "
              "clang-only); the static-analysis CI job runs this.")
        return SKIP

    base = [clang, "-std=c++20", "-fsyntax-only", "-Wthread-safety",
            "-Werror", f"-I{root / 'src'}", str(root / NEGATIVE_TU)]

    control = subprocess.run(base + ["-DMPIPU_TS_POSITIVE"],
                             capture_output=True, text=True)
    if control.returncode != 0:
        print("FAIL: the positive control (violations compiled out) did not "
              "compile -- fix the TU/flags before trusting the negative run:")
        print(control.stderr)
        return 1
    print("ok: positive control compiles clean")

    negative = subprocess.run(base, capture_output=True, text=True)
    if negative.returncode == 0:
        print("FAIL: the negative TU COMPILED -- the thread-safety "
              "annotations are not rejecting bad lock discipline "
              "(check common/annotated_mutex.h attribute plumbing).")
        return 1
    if "-Wthread-safety" not in negative.stderr:
        print("FAIL: the negative TU failed for a reason other than "
              "-Wthread-safety diagnostics:")
        print(negative.stderr)
        return 1
    count = negative.stderr.count("error:")
    print(f"ok: negative TU rejected with {count} thread-safety error(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
