// Design-space exploration (paper §4.4): sweep adder-tree precision and
// cluster size, score each design on INT4 and FP16 area/power efficiency
// under a user-selectable INT/FP workload mix, and print the Pareto set.
// Then sweep the multi-tile partition (sim/partition.h): partition kind x
// tile count, reporting per-tile utilization and load imbalance.
//
//   ./examples/design_space_explorer [fp_fraction] [--smoke]
//                                    [--tiles-json [path]]
//     fp_fraction: fraction of deployed work that is FP16 (default 0.25)
//     --smoke: shrink both sweeps for CI
//     --tiles-json: write the partition sweep to path (default
//                   BENCH_tiles.json)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "api/json.h"
#include "api/session.h"
#include "model/hw_model.h"

using namespace mpipu;

namespace {

struct Candidate {
  int w = 0, cluster = 0;
  double tops_mm2 = 0.0, tflops_mm2 = 0.0, tops_w = 0.0, tflops_w = 0.0;
  double blended_per_mm2 = 0.0;  // workload-weighted throughput density
};

}  // namespace

int main(int argc, char** argv) {
  double fp_fraction = 0.25;
  bool smoke = false;
  std::string tiles_json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--tiles-json") == 0) {
      tiles_json_path = (i + 1 < argc && argv[i + 1][0] != '-')
                            ? argv[++i]
                            : "BENCH_tiles.json";
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [fp_fraction] [--smoke] [--tiles-json [path]]\n",
                   argv[0]);
      return 2;
    } else {
      fp_fraction = std::atof(argv[i]);
    }
  }
  std::printf("== IPU design-space explorer (FP16 share of work: %.0f%%) ==\n\n",
              100.0 * fp_fraction);

  // Every design is scored through the high-level API: one Session per
  // candidate, whose RunSpec datapath + tile geometry come from the design,
  // estimating the same shape-table Model.
  const Model model = Model::from_network(resnet18_forward());
  SimOptions opts;
  opts.sampled_steps = smoke ? 80 : 300;

  auto estimate_design = [&](const TileConfig& tile) {
    RunSpec spec;
    spec.datapath = tile.datapath;
    spec.tile = tile;
    spec.sim = opts;
    return Session(spec).estimate(model);
  };
  const auto base_run = estimate_design(baseline2());

  const std::vector<int> widths =
      smoke ? std::vector<int>{16, 38} : std::vector<int>{12, 14, 16, 20, 24, 28, 38};
  const std::vector<int> cluster_sizes =
      smoke ? std::vector<int>{1, 64} : std::vector<int>{1, 2, 4, 16, 64};
  std::vector<Candidate> cands;
  for (int w : widths) {
    for (int cluster : cluster_sizes) {
      DesignConfig d = proposed_design(w, cluster, /*big=*/true);
      if (w >= 38) d.tile.datapath.multi_cycle = false;
      const auto run = estimate_design(d.tile);
      const double slowdown = run.normalized_to(base_run);
      Candidate c;
      c.w = w;
      c.cluster = cluster;
      c.tops_mm2 = tops_per_mm2(d, 4, 4);
      c.tops_w = tops_per_w(d, 4, 4);
      c.tflops_mm2 = tflops_per_mm2(d, slowdown);
      c.tflops_w = tflops_per_w(d, slowdown);
      // Blend: harmonic-style weighting of INT and FP density.
      c.blended_per_mm2 =
          (1.0 - fp_fraction) * c.tops_mm2 + fp_fraction * 9.0 * c.tflops_mm2;
      cands.push_back(c);
    }
  }

  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.blended_per_mm2 > b.blended_per_mm2;
            });

  std::printf("%-14s %12s %14s %10s %12s %14s\n", "design (w,c)", "TOPS/mm2",
              "TFLOPS/mm2", "TOPS/W", "TFLOPS/W", "blended/mm2");
  for (size_t i = 0; i < cands.size() && i < 12; ++i) {
    const auto& c = cands[i];
    std::printf("(%2d,%2d)%7s %12.1f %14.2f %10.2f %12.3f %14.1f\n", c.w, c.cluster, "",
                c.tops_mm2, c.tflops_mm2, c.tops_w, c.tflops_w, c.blended_per_mm2);
  }

  // Pareto front on (TOPS/mm2, TFLOPS/mm2).
  std::printf("\nPareto-optimal designs (TOPS/mm2 vs TFLOPS/mm2):\n");
  for (const auto& c : cands) {
    bool dominated = false;
    for (const auto& o : cands) {
      if (o.tops_mm2 >= c.tops_mm2 && o.tflops_mm2 >= c.tflops_mm2 &&
          (o.tops_mm2 > c.tops_mm2 || o.tflops_mm2 > c.tflops_mm2)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      std::printf("  (w=%2d, cluster=%2d): %.1f TOPS/mm2, %.2f TFLOPS/mm2\n", c.w,
                  c.cluster, c.tops_mm2, c.tflops_mm2);
    }
  }
  std::printf("\nPick narrow trees + small clusters for INT-heavy fleets, wider trees\n");
  std::printf("when FP16 dominates -- the paper's (12,1)/(16,1) Pareto points.\n");

  // -------------------------------------------------------------------------
  // Multi-tile partition sweep: kind x tile count on the same network.
  // Cycles shrink as tiles are added (each tile owns a smaller shard) while
  // utilization drops wherever a layer's extent does not divide evenly --
  // the classic scale-out tradeoff the per-tile sim makes visible.
  // -------------------------------------------------------------------------
  std::printf("\n== Multi-tile partition sweep (resnet18, big tile) ==\n\n");
  std::printf("%-16s %6s %14s %12s %14s\n", "partition", "tiles", "cycles",
              "mean util", "max imbalance");

  Json tiles_root = Json::object();
  tiles_root.set("bench", "design_space_explorer_tiles");
  tiles_root.set("network", "resnet18");
  tiles_root.set("smoke", smoke);
  Json configs = Json::array();

  const std::vector<int> tile_counts =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  for (const PartitionKind kind :
       {PartitionKind::kOutputChannel, PartitionKind::kSpatialRows}) {
    for (const int num_tiles : tile_counts) {
      TileConfig tile = big_tile(16, 28);
      tile.num_tiles = num_tiles;
      RunSpec spec;
      spec.datapath = tile.datapath;
      spec.tile = tile;
      spec.sim = opts;
      spec.partition.kind = kind;
      const NetworkSimResult r = Session(spec).estimate(model);

      // Aggregate per-tile utilization across layers, cycle-weighted: tile
      // i's busy cycles over the network's critical-path cycles.
      std::vector<double> tile_busy(static_cast<size_t>(num_tiles), 0.0);
      double max_imbalance = 0.0;
      for (const LayerSimResult& l : r.layers) {
        max_imbalance = std::max(max_imbalance, l.imbalance);
        for (const TileSimResult& t : l.tiles) {
          tile_busy[static_cast<size_t>(t.tile)] += t.cycles;
        }
      }
      Json util = Json::array();
      for (double busy : tile_busy) {
        util.push(r.total_cycles > 0.0 ? busy / r.total_cycles : 0.0);
      }

      std::printf("%-16s %6d %14.0f %12.3f %14.3f\n", r.partition.c_str(),
                  num_tiles, r.total_cycles, r.mean_tile_utilization,
                  max_imbalance);

      Json cfg = Json::object();
      cfg.set("partition", r.partition)
          .set("num_tiles", num_tiles)
          .set("total_cycles", r.total_cycles)
          .set("mean_tile_utilization", r.mean_tile_utilization)
          .set("max_layer_imbalance", max_imbalance)
          .set("tile_utilization", std::move(util));
      configs.push(std::move(cfg));
    }
  }
  tiles_root.set("configs", std::move(configs));

  if (!tiles_json_path.empty()) {
    std::ofstream out(tiles_json_path);
    out << tiles_root.dump() << "\n";
    std::printf("\nwrote %s\n", tiles_json_path.c_str());
  }
  return 0;
}
