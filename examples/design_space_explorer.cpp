// Design-space exploration (paper §4.4): sweep adder-tree precision and
// cluster size, score each design on INT4 and FP16 area/power efficiency
// under a user-selectable INT/FP workload mix, and print the Pareto set.
//
//   ./examples/design_space_explorer [fp_fraction]
//     fp_fraction: fraction of deployed work that is FP16 (default 0.25)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/session.h"
#include "model/hw_model.h"

using namespace mpipu;

namespace {

struct Candidate {
  int w = 0, cluster = 0;
  double tops_mm2 = 0.0, tflops_mm2 = 0.0, tops_w = 0.0, tflops_w = 0.0;
  double blended_per_mm2 = 0.0;  // workload-weighted throughput density
};

}  // namespace

int main(int argc, char** argv) {
  const double fp_fraction = argc > 1 ? std::atof(argv[1]) : 0.25;
  std::printf("== IPU design-space explorer (FP16 share of work: %.0f%%) ==\n\n",
              100.0 * fp_fraction);

  // Every design is scored through the high-level API: one Session per
  // candidate, whose RunSpec datapath + tile geometry come from the design,
  // estimating the same shape-table Model.
  const Model model = Model::from_network(resnet18_forward());
  SimOptions opts;
  opts.sampled_steps = 300;

  auto estimate_design = [&](const TileConfig& tile) {
    RunSpec spec;
    spec.datapath = tile.datapath;
    spec.tile = tile;
    spec.sim = opts;
    return Session(spec).estimate(model);
  };
  const auto base_run = estimate_design(baseline2());

  std::vector<Candidate> cands;
  for (int w : {12, 14, 16, 20, 24, 28, 38}) {
    for (int cluster : {1, 2, 4, 16, 64}) {
      DesignConfig d = proposed_design(w, cluster, /*big=*/true);
      if (w >= 38) d.tile.datapath.multi_cycle = false;
      const auto run = estimate_design(d.tile);
      const double slowdown = run.normalized_to(base_run);
      Candidate c;
      c.w = w;
      c.cluster = cluster;
      c.tops_mm2 = tops_per_mm2(d, 4, 4);
      c.tops_w = tops_per_w(d, 4, 4);
      c.tflops_mm2 = tflops_per_mm2(d, slowdown);
      c.tflops_w = tflops_per_w(d, slowdown);
      // Blend: harmonic-style weighting of INT and FP density.
      c.blended_per_mm2 =
          (1.0 - fp_fraction) * c.tops_mm2 + fp_fraction * 9.0 * c.tflops_mm2;
      cands.push_back(c);
    }
  }

  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.blended_per_mm2 > b.blended_per_mm2;
            });

  std::printf("%-14s %12s %14s %10s %12s %14s\n", "design (w,c)", "TOPS/mm2",
              "TFLOPS/mm2", "TOPS/W", "TFLOPS/W", "blended/mm2");
  for (size_t i = 0; i < cands.size() && i < 12; ++i) {
    const auto& c = cands[i];
    std::printf("(%2d,%2d)%7s %12.1f %14.2f %10.2f %12.3f %14.1f\n", c.w, c.cluster, "",
                c.tops_mm2, c.tflops_mm2, c.tops_w, c.tflops_w, c.blended_per_mm2);
  }

  // Pareto front on (TOPS/mm2, TFLOPS/mm2).
  std::printf("\nPareto-optimal designs (TOPS/mm2 vs TFLOPS/mm2):\n");
  for (const auto& c : cands) {
    bool dominated = false;
    for (const auto& o : cands) {
      if (o.tops_mm2 >= c.tops_mm2 && o.tflops_mm2 >= c.tflops_mm2 &&
          (o.tops_mm2 > c.tops_mm2 || o.tflops_mm2 > c.tflops_mm2)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      std::printf("  (w=%2d, cluster=%2d): %.1f TOPS/mm2, %.2f TFLOPS/mm2\n", c.w,
                  c.cluster, c.tops_mm2, c.tflops_mm2);
    }
  }
  std::printf("\nPick narrow trees + small clusters for INT-heavy fleets, wider trees\n");
  std::printf("when FP16 dominates -- the paper's (12,1)/(16,1) Pareto points.\n");
  return 0;
}
