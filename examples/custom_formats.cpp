// Custom data types on one datapath (paper Appendix B and beyond):
// FP16, BFloat16, TF32, FP8 (e4m3) and hybrid FP16 x INT4 all run on the
// same nibble-based IPU -- only the EHU exponent width and the iteration
// count change.
//
//   ./examples/custom_formats
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/ipu.h"
#include "core/reference.h"

using namespace mpipu;

namespace {

constexpr FpFormat kE4M3{4, 3};

template <FpFormat F>
void demo_format(const char* name, Ipu& ipu, Rng& rng) {
  std::vector<Soft<F>> a, b;
  for (int k = 0; k < 16; ++k) {
    a.push_back(Soft<F>::from_double(rng.normal(0.0, 1.0)));
    b.push_back(Soft<F>::from_double(rng.normal(0.0, 0.25)));
  }
  ipu.reset_accumulator();
  const int cycles = ipu.fp_accumulate<F>(a, b);
  const double got = ipu.read_fp<kFp32Format>().to_double();
  const double want =
      exact_fp_inner_product_rounded<F, kFp32Format>(a, b).to_double();
  const int kn = fp_nibble_count(F);
  std::printf("%-10s  (1,%d,%d)  %dx%d=%d nibble iters  %2d cycles  result %-11g "
              "(exact %g)\n",
              name, F.exp_bits, F.man_bits, kn, kn, kn * kn, cycles, got, want);
}

}  // namespace

int main() {
  std::printf("== One datapath, five data types ==\n\n");
  std::printf("%-10s  format   decomposition        cycles   value\n", "type");

  IpuConfig cfg;
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 28;
  // BF16/TF32 products span ~500 exponent values; widen the honored
  // alignment accordingly (Appendix B: "the EHU should support 8-bit
  // exponents and larger shift units might be needed").
  cfg.software_precision = 40;
  cfg.multi_cycle = true;
  Ipu ipu(cfg);
  Rng rng(2024);

  demo_format<kFp16Format>("FP16", ipu, rng);
  demo_format<kBf16Format>("BFloat16", ipu, rng);
  demo_format<kTf32Format>("TF32", ipu, rng);
  demo_format<kE4M3>("FP8-e4m3", ipu, rng);

  // Hybrid: FP16 activations x INT4 weights (Appendix B).
  std::vector<Fp16> act;
  std::vector<int32_t> wgt;
  double expect = 0.0;
  for (int k = 0; k < 16; ++k) {
    act.push_back(Fp16::from_double(rng.normal(0.0, 1.0)));
    wgt.push_back(static_cast<int32_t>(rng.uniform_int(-8, 7)));
    expect += act.back().to_double() * wgt.back();
  }
  ipu.reset_accumulator();
  const int cycles = ipu.fp_int_accumulate<kFp16Format>(act, wgt, 4);
  std::printf("%-10s  fp16xint4 3x1=3 nibble iters   %2d cycles  result %-11g "
              "(exact %g)\n",
              "hybrid", cycles, ipu.read_fp<kFp32Format>().to_double(), expect);

  std::printf("\nIteration counts are the whole cost story: FP8 runs 9x faster than\n");
  std::printf("FP16, hybrid FP16xINT4 3x faster -- on unchanged hardware.\n");
  return 0;
}
