// Server loop: the serving runtime end to end.
//
// examples/serving_loop.cpp shows the load-once / serve-many pattern with a
// hand-rolled loop around CompiledModel::run.  This example replaces that
// loop with src/serve's ServingRuntime: a bounded request queue, a dynamic
// batching window, async workers, typed overload shedding and SLO metrics
// -- the machinery a real serving process needs around the same plan.
//
//   load(model)  -> handle            (compile once, LRU plan cache)
//   submit(h, x) -> future<result>    (never throws for overload)
//   metrics()    -> throughput, p50/p95/p99, shed counts, batch sizes
#include <cstdio>
#include <future>
#include <vector>

#include "common/rng.h"
#include "serve/serving_runtime.h"
#include "serve/traffic.h"

using namespace mpipu;

int main() {
  // ---- load time: model + runtime --------------------------------------
  Rng rng(99);
  std::vector<ModelLayer> layers(3);
  layers[0] = {"stem", random_filters(rng, 16, 3, 3, 3, ValueDist::kNormal, 0.3),
               ConvSpec{.stride = 1, .pad = 1}, /*relu=*/true, PoolOp::kNone};
  layers[1] = {"body", random_filters(rng, 24, 16, 3, 3, ValueDist::kNormal, 0.1),
               ConvSpec{.stride = 1, .pad = 1}, /*relu=*/true, PoolOp::kMax2};
  layers[2] = {"head", random_filters(rng, 10, 24, 1, 1, ValueDist::kNormal, 0.2),
               ConvSpec{}, /*relu=*/false, PoolOp::kGlobalAvg};
  const Model model = Model::from_layers("tiny-cnn", std::move(layers));

  RunSpec spec;
  spec.datapath.adder_tree_width = 16;  // MC-IPU(16)
  spec.policy = PrecisionPolicy::int8_except_first_last();
  spec.threads = 1;  // serving: parallelism across requests, not within one

  serve::ServerConfig cfg;
  cfg.workers = 1;          // async workers behind the queue
  cfg.queue_capacity = 32;  // bounded: overload sheds instead of piling up
  cfg.max_batch = 8;        // gather up to 8 same-model requests per dispatch
  serve::ServingRuntime rt(spec, cfg);
  const serve::ModelHandle h = rt.load(model, 16, 16);
  std::printf("loaded '%s' -> handle %d (%zu plan(s) cached)\n",
              rt.model(h)->model_name().c_str(), h, rt.loaded_count());

  // ---- request time: a zipf-skewed burst of requests --------------------
  // A small catalog with hot-key skew, like production traffic; identical
  // inputs inside one batch execute once and fan out (exact: the datapath
  // is deterministic).
  std::vector<Tensor> catalog;
  for (int i = 0; i < 4; ++i) {
    catalog.push_back(random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0));
  }
  const std::vector<int> stream = serve::zipf_indices(rng, 1.2, 4, 24);

  std::vector<std::future<serve::ServeResult>> futures;
  for (int idx : stream) {
    serve::SubmitOptions opts;
    opts.timeout_s = 2.0;  // shed at dispatch if still queued past this
    futures.push_back(rt.submit(h, catalog[static_cast<size_t>(idx)], opts));
  }

  int ok = 0, rejected = 0, coalesced = 0;
  for (auto& f : futures) {
    const serve::ServeResult r = f.get();
    if (r.ok()) {
      ++ok;
      if (r.coalesced) ++coalesced;
    } else {
      ++rejected;
      std::printf("request rejected: %s\n",
                  serve::reject_reason_name(r.rejected));
    }
  }
  std::printf("served %d requests (%d coalesced onto an identical twin), "
              "%d rejected\n", ok, coalesced, rejected);

  // ---- the SLO picture ---------------------------------------------------
  const serve::ServerMetrics m = rt.metrics();
  std::printf("throughput %.1f req/s | latency p50 %.2f ms, p95 %.2f ms, "
              "p99 %.2f ms | mean batch %.2f | queue high-water %zu | "
              "shed full/deadline/shutdown %llu/%llu/%llu\n",
              m.throughput_rps, m.latency.p50_s * 1e3, m.latency.p95_s * 1e3,
              m.latency.p99_s * 1e3, m.mean_batch_size, m.queue_high_water,
              static_cast<unsigned long long>(m.shed_queue_full),
              static_cast<unsigned long long>(m.shed_deadline),
              static_cast<unsigned long long>(m.shed_shutdown));

  rt.shutdown(serve::ServingRuntime::Shutdown::kDrain);  // complete, then stop
  return 0;
}
