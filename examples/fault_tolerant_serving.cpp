// Fault-tolerant serving: the full robustness stack in one runnable tour.
//
//   FaultPlan        -- a seeded chaos schedule makes executions fail on
//                       demand (same faults every run of a seed);
//   ServingRuntime   -- classifies every failure into a typed ServeResult:
//                       futures NEVER throw, batchmates of a faulting
//                       request are isolated and complete ok;
//   CircuitBreaker   -- consecutive failures open the breaker, submissions
//                       shed kUnhealthy in microseconds, a half-open probe
//                       restores service after the cooldown;
//   ServeClient      -- bounded retries with exponential backoff + jitter
//                       ride out the transient window.
//
// A ManualClock drives the whole demo, so the breaker cooldown "elapses"
// instantly and the run takes milliseconds of wall time.  The same chaos
// can be pointed at any serving binary without a rebuild:
//
//   MPIPU_FAULT="seed=7,throw=0.3,delay=0.1:0.002" ./bench_server --smoke
#include <cstdio>

#include "common/clock.h"
#include "common/rng.h"
#include "serve/fault.h"
#include "serve/serve_client.h"
#include "serve/serving_runtime.h"

using namespace mpipu;
using namespace mpipu::serve;

int main() {
  Rng rng(77);
  std::vector<ModelLayer> layers(2);
  layers[0] = {"stem", random_filters(rng, 8, 3, 3, 3, ValueDist::kNormal, 0.3),
               ConvSpec{.stride = 1, .pad = 1}, /*relu=*/true, PoolOp::kNone};
  layers[1] = {"head", random_filters(rng, 4, 8, 1, 1, ValueDist::kNormal, 0.2),
               ConvSpec{}, /*relu=*/false, PoolOp::kGlobalAvg};
  const Model model = Model::from_layers("ft-demo", std::move(layers));
  const Tensor input = random_tensor(rng, 3, 12, 12, ValueDist::kHalfNormal, 1.0);

  // A chaos schedule that fails EVERY execution attempt until switched off.
  auto faults = std::make_shared<FaultPlan>(
      FaultPlan::Config{.seed = 7, .throw_prob = 1.0});

  ManualClock clock;
  RunSpec spec;
  spec.datapath.adder_tree_width = 16;
  spec.policy = PrecisionPolicy::all_fp16(AccumKind::kFp32);
  spec.threads = 1;
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.open_cooldown_s = 30.0;  // virtual seconds: free under ManualClock
  cfg.faults = faults;
  cfg.clock = &clock;
  ServingRuntime rt(spec, cfg);
  const ModelHandle h = rt.load(model, 12, 12);

  // ---- phase 1: chaos.  Typed failures, then the breaker takes over. -----
  std::printf("-- fault phase (every execution throws) --\n");
  for (int i = 0; i < 5; ++i) {
    const ServeResult r = rt.serve(h, input);
    std::printf("request %d -> %s%s%s\n", i, reject_reason_name(r.rejected),
                r.error.empty() ? "" : ": ", r.error.c_str());
  }
  // Requests 0-2 fail kExecError (and open the breaker); 3-4 shed
  // kUnhealthy without ever reaching a worker.

  // A malformed request is the CLIENT's fault: shed kBadInput at admission,
  // and deliberately invisible to the breaker.
  const ServeResult bad =
      rt.serve(h, random_tensor(rng, 3, 8, 8, ValueDist::kHalfNormal, 1.0));
  std::printf("bad geometry -> %s\n", reject_reason_name(bad.rejected));

  // ---- phase 2: recovery.  Faults clear, the cooldown elapses. -----------
  faults->set_enabled(false);
  clock.advance(cfg.breaker.open_cooldown_s + 1.0);

  // A retrying client would have ridden the whole thing out on its own;
  // here it lands on the half-open probe and closes the breaker.
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_s = 0.05;  // virtual: the backoff costs no wall time
  ServeClient client(rt, policy);
  const ServeResult ok = client.call(h, input);
  std::printf("-- recovery --\nretrying client -> %s (top output %.4f)\n",
              reject_reason_name(ok.rejected),
              ok.ok() ? ok.report.output.data[0] : 0.0);
  const ClientStats cs = client.stats();
  std::printf("client stats: %llu call(s), %llu attempt(s), %llu retried\n",
              static_cast<unsigned long long>(cs.calls),
              static_cast<unsigned long long>(cs.attempts),
              static_cast<unsigned long long>(cs.retries));

  // ---- the ledger: every submission accounted for, exactly once. ---------
  const ServerMetrics m = rt.metrics();
  std::printf(
      "metrics: submitted=%llu completed=%llu failed=%llu unhealthy=%llu "
      "bad_input=%llu in_flight=%llu conserved=%s\n",
      static_cast<unsigned long long>(m.submitted),
      static_cast<unsigned long long>(m.completed),
      static_cast<unsigned long long>(m.failed),
      static_cast<unsigned long long>(m.shed_unhealthy),
      static_cast<unsigned long long>(m.shed_bad_input),
      static_cast<unsigned long long>(m.in_flight),
      m.conserved() ? "true" : "false");
  for (const ModelHealthSnapshot& s : m.models) {
    std::printf("model '%s': breaker %s, %llu exec failure(s), opened %llu time(s)\n",
                s.model.c_str(), breaker_state_name(s.state),
                static_cast<unsigned long long>(s.exec_failures),
                static_cast<unsigned long long>(s.times_opened));
  }
  return m.conserved() ? 0 : 1;
}
