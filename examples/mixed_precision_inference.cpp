// Mixed-precision inference scenario (the paper's motivating use case):
// a small CNN where each layer is assigned its own precision -- INT4 for
// robust middle layers, INT8 where quantization is harder, FP16 for the
// sensitive first/last layers -- all running on the *same* IPU datapath.
//
// Shows per-layer accuracy (vs the exact FP32 reference) and the datapath
// cycles each choice costs, i.e. the accuracy/efficiency trade-off the
// mixed-precision hardware enables.
//
//   ./examples/mixed_precision_inference
#include <cstdio>
#include <string>
#include <vector>

#include "nn/conv.h"

using namespace mpipu;

namespace {

struct LayerPlan {
  std::string name;
  const char* precision;  // "fp16", "int8", "int4"
  FilterBank filters;
  ConvSpec spec;
};

Tensor run_layer(const LayerPlan& plan, const Tensor& input, ConvEngine& engine) {
  const std::string p = plan.precision;
  if (p == "fp16") {
    return engine.conv_fp16(input.rounded_to_fp16(), plan.filters.rounded_to_fp16(),
                            plan.spec);
  }
  const int bits = p == "int8" ? 8 : 4;
  return engine.conv_int(input, plan.filters, plan.spec, bits, bits);
}

}  // namespace

int main() {
  std::printf("== Mixed-precision CNN inference on one IPU datapath ==\n\n");

  Rng rng(7);
  Tensor input = random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0);

  ConvSpec pad1;
  pad1.pad = 1;
  std::vector<LayerPlan> plans;
  plans.push_back({"conv1 (sensitive)", "fp16",
                   random_filters(rng, 16, 3, 3, 3, ValueDist::kNormal, 0.3), pad1});
  plans.push_back({"conv2 (robust)", "int4",
                   random_filters(rng, 24, 16, 3, 3, ValueDist::kNormal, 0.1), pad1});
  plans.push_back({"conv3 (robust)", "int8",
                   random_filters(rng, 24, 24, 3, 3, ValueDist::kNormal, 0.1), pad1});
  plans.push_back({"head (sensitive)", "fp16",
                   random_filters(rng, 10, 24, 1, 1, ValueDist::kNormal, 0.2),
                   ConvSpec{}});

  // One unified datapath config serves every layer; swap `scheme` to run
  // the whole net on the serial or spatial decomposition instead.
  ConvEngineConfig ec;
  ec.datapath.scheme = DecompositionScheme::kTemporal;
  ec.datapath.n_inputs = 16;
  ec.datapath.adder_tree_width = 16;
  ec.datapath.software_precision = 28;
  ec.datapath.multi_cycle = true;
  ec.accum = AccumKind::kFp32;
  ec.threads = 0;  // hardware_concurrency
  ConvEngine engine(ec);

  std::printf("%-18s %-6s %12s %12s %10s\n", "layer", "prec", "SNR vs FP32", "max |err|",
              "cycles");
  Tensor x = input, x_ref = input;
  int64_t cycles_before = 0;
  for (const auto& plan : plans) {
    const Tensor y = relu(run_layer(plan, x, engine));
    const Tensor y_ref = relu(conv_reference(x_ref, plan.filters, plan.spec));
    const AgreementStats agree = compare_outputs(y, y_ref);
    const int64_t cycles_now = engine.stats().cycles;
    std::printf("%-18s %-6s %9.1f dB %12.2e %10lld\n", plan.name.c_str(), plan.precision,
                agree.snr_db, agree.max_abs_err,
                static_cast<long long>(cycles_now - cycles_before));
    cycles_before = cycles_now;
    x = y;
    x_ref = y_ref;
  }

  const AgreementStats final_agree = compare_outputs(x, x_ref);
  std::printf("\nEnd-to-end output SNR vs exact FP32 pipeline: %.1f dB\n",
              final_agree.snr_db);
  std::printf("\nTakeaway: one nibble-based datapath serves FP16, INT8 and INT4 layers;\n");
  std::printf("INT4 layers run 9x fewer nibble iterations than FP16 ones.\n");
  return 0;
}
