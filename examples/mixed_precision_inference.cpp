// Mixed-precision inference scenario (the paper's motivating use case):
// a small CNN where each layer is assigned its own precision -- INT4 for
// robust middle layers, INT8 where quantization is harder, FP16 for the
// sensitive first/last layers -- all running on the *same* IPU datapath.
//
// Migrated onto the high-level API: the layer list is a Model, the per-layer
// choices are a PrecisionPolicy (the int8_except_first_last preset plus one
// INT4 override), and a single Session::run produces the whole
// accuracy/cycles table that used to be hand-wired ConvEngine calls.
//
//   ./examples/mixed_precision_inference
#include <cstdio>
#include <vector>

#include "api/session.h"

using namespace mpipu;

int main() {
  std::printf("== Mixed-precision CNN inference on one IPU datapath ==\n\n");

  Rng rng(7);
  const Tensor input = random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0);

  ConvSpec pad1;
  pad1.pad = 1;
  std::vector<ModelLayer> layers(4);
  layers[0] = {"conv1 (sensitive)",
               random_filters(rng, 16, 3, 3, 3, ValueDist::kNormal, 0.3), pad1,
               /*relu=*/true, PoolOp::kNone};
  layers[1] = {"conv2 (robust)",
               random_filters(rng, 24, 16, 3, 3, ValueDist::kNormal, 0.1), pad1,
               /*relu=*/true, PoolOp::kNone};
  layers[2] = {"conv3 (robust)",
               random_filters(rng, 24, 24, 3, 3, ValueDist::kNormal, 0.1), pad1,
               /*relu=*/true, PoolOp::kNone};
  layers[3] = {"head (sensitive)",
               random_filters(rng, 10, 24, 1, 1, ValueDist::kNormal, 0.2),
               ConvSpec{}, /*relu=*/true, PoolOp::kNone};
  const Model model = Model::from_layers("mixed-cnn", std::move(layers));

  // One RunSpec serves every layer; swap `scheme` to run the whole net on
  // the serial or spatial decomposition instead.  The policy preset keeps
  // the sensitive ends in FP16 and quantizes the interior; conv2 is robust
  // enough for INT4.
  RunSpec spec;
  spec.datapath.scheme = DecompositionScheme::kTemporal;
  spec.datapath.n_inputs = 16;
  spec.datapath.adder_tree_width = 16;
  spec.datapath.software_precision = 28;
  spec.policy = PrecisionPolicy::int8_except_first_last().set_layer(
      "conv2 (robust)", LayerPrecision::int_bits(4, 4));
  spec.threads = 0;  // hardware_concurrency
  Session session(spec);

  const RunReport report = session.run(model, input);

  std::printf("%-18s %-12s %12s %12s %10s\n", "layer", "precision",
              "SNR vs FP32", "max |err|", "cycles");
  for (const LayerRunReport& l : report.layers) {
    std::printf("%-18s %-12s %9.1f dB %12.2e %10lld\n", l.layer.c_str(),
                l.precision.c_str(), l.error.snr_db, l.error.max_abs_err,
                static_cast<long long>(l.stats.cycles));
  }

  std::printf("\nEnd-to-end output SNR vs exact FP32 pipeline: %.1f dB\n",
              report.end_to_end.snr_db);
  std::printf("\nTakeaway: one nibble-based datapath serves FP16, INT8 and INT4 layers;\n");
  std::printf("INT4 layers run 9x fewer nibble iterations than FP16 ones.\n");
  return 0;
}
