// Graph inference quickstart: build the paper's branchy shapes -- a ResNet
// residual block and an Inception branch/concat block -- as GraphModels,
// run them end-to-end on the bit-accurate datapath, and read the per-node
// report.  The 30-line version of what test_graph_model pins exhaustively.
//
// Shows the three ways to get a graph:
//   1. a workload builder (resnet_basic_block_graph) + materialize_weights;
//   2. the GraphModel::Builder with your own weights;
//   3. the full resnet18_graph() trunk, here only cycle-estimated (run it
//      too if you have the patience -- same API).
#include <cstdio>

#include "api/session.h"
#include "workload/graph_builders.h"

using namespace mpipu;

int main() {
  RunSpec spec;
  spec.datapath = DatapathConfig::for_scheme(DecompositionScheme::kTemporal);
  spec.datapath.adder_tree_width = 16;
  // Quantize interior convs to INT8, keep the first/last (sensitive) convs
  // in FP16 -- joins carry no precision, the policy sees conv nodes only.
  spec.policy = PrecisionPolicy::int8_except_first_last();
  spec.threads = 2;
  Session session(spec);

  // 1. A stride-2 projection residual block, weights drawn from the
  //    paper's forward-pass distributions.
  GraphModel block = resnet_basic_block_graph(8, 16, 2);
  block.materialize_weights(/*seed=*/42);

  Rng rng(7);
  const Tensor input = random_tensor(rng, 8, 14, 14, ValueDist::kHalfNormal, 1.0);
  const RunReport report = session.run(block, input);

  std::printf("%s on %s: %zu nodes, output %dx%dx%d, SNR %.1f dB\n",
              report.model.c_str(), report.scheme.c_str(),
              report.layers.size(), report.output.c, report.output.h,
              report.output.w, report.end_to_end.snr_db);
  for (const LayerRunReport& l : report.layers) {
    std::printf("  %-14s %-13s cycles=%-8lld max_err=%.2e\n", l.layer.c_str(),
                l.precision.c_str(),
                static_cast<long long>(l.stats.cycles), l.error.max_abs_err);
  }

  // 2. Hand-built diamond with the Builder: conv -> {3x3, 1x1} -> concat.
  GraphModel::Builder b("diamond");
  const int in = b.input();
  ConvSpec pad1;
  pad1.pad = 1;
  const int stem = b.conv_shape("stem", 8, 8, 3, 3, pad1, in, /*relu=*/true);
  const int left = b.conv_shape("left", 8, 8, 3, 3, pad1, stem, /*relu=*/true);
  const int right = b.conv_shape("right", 8, 8, 1, 1, ConvSpec{}, stem);
  b.add("join", left, right, /*relu=*/true);
  GraphModel diamond = b.build();
  diamond.materialize_weights(43);
  const RunReport drep = session.run(diamond, input);
  std::printf("\n%s: residual add joins %d-channel branches, SNR %.1f dB\n",
              drep.model.c_str(), drep.output.c, drep.end_to_end.snr_db);

  // 3. The full ResNet-18 trunk as a graph: estimate-only here (weights
  //    optional), on the same spec that ran the blocks above.
  const NetworkSimResult est = session.estimate(resnet18_graph(), 224, 224);
  std::printf("\nresnet18-graph @224x224: %zu conv rows, %.3g simulated "
              "cycles end-to-end\n",
              est.layers.size(), est.total_cycles);
  return 0;
}
