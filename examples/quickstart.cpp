// Quickstart: the mixed-precision IPU in five minutes.
//
// Builds one MC-IPU(16), runs an FP16 inner product and an INT8 inner
// product through the bit-accurate datapath, and shows the three things the
// paper is about: temporal nibble decomposition, alignment-driven
// multi-cycling, and the accuracy of the approximate datapath.
//
//   ./examples/quickstart
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/datapath.h"
#include "core/ipu.h"
#include "core/reference.h"
#include "nn/conv.h"

using namespace mpipu;

int main() {
  std::printf("== Mixed-precision IPU quickstart ==\n\n");

  // An MC-IPU(16): 16 multiplier lanes, 16-bit adder tree, FP32-grade
  // software precision (28 bits of alignment honored, paper Section 3.1).
  IpuConfig cfg;
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 16;
  cfg.software_precision = 28;
  cfg.multi_cycle = true;
  Ipu ipu(cfg);
  std::printf("MC-IPU(%d): %d inputs, safe precision sp = %d bits\n",
              cfg.adder_tree_width, cfg.n_inputs, cfg.safe_precision());

  // --- FP16 inner product ---------------------------------------------------
  Rng rng(42);
  std::vector<Fp16> a, b;
  for (int i = 0; i < 16; ++i) {
    a.push_back(Fp16::from_double(rng.normal(0.0, 1.0)));
    b.push_back(Fp16::from_double(rng.normal(0.0, 0.05)));
  }
  const int cycles = ipu.fp_accumulate<kFp16Format>(a, b);
  const Fp32 result = ipu.read_fp<kFp32Format>();
  const Fp32 exact = exact_fp_inner_product_rounded<kFp16Format, kFp32Format>(a, b);

  std::printf("\nFP16 dot product of 16 pairs:\n");
  std::printf("  datapath result (FP32): %-12g raw=0x%08X\n", result.to_double(),
              result.raw_bits());
  std::printf("  exact reference (FP32): %-12g raw=0x%08X\n", exact.to_double(),
              exact.raw_bits());
  std::printf("  cycles: %d  (9 nibble iterations x %d alignment cycle(s))\n", cycles,
              cycles / 9);

  // --- Force a large alignment to see multi-cycling --------------------------
  std::vector<Fp16> big = a;
  big[0] = Fp16::from_double(20000.0);  // exponent far above the others
  ipu.reset_accumulator();
  const int cycles_wide = ipu.fp_accumulate<kFp16Format>(big, b);
  std::printf("\nSame op with one 2e4-magnitude outlier: %d cycles (%d per iteration)\n",
              cycles_wide, cycles_wide / 9);
  std::printf("  -> products far below the max exponent need extra serve cycles\n");

  // --- INT8 inner product -----------------------------------------------------
  std::vector<int32_t> ia, ib;
  int64_t expect = 0;
  for (int i = 0; i < 16; ++i) {
    ia.push_back(static_cast<int32_t>(rng.uniform_int(-128, 127)));
    ib.push_back(static_cast<int32_t>(rng.uniform_int(-128, 127)));
    expect += int64_t{ia.back()} * ib.back();
  }
  ipu.reset_accumulator();
  const int int_cycles = ipu.int_accumulate(ia, ib, 8, 8);
  std::printf("\nINT8 dot product: datapath %lld, expected %lld, cycles %d "
              "(2x2 nibble iterations, exact)\n",
              static_cast<long long>(ipu.read_int()), static_cast<long long>(expect),
              int_cycles);

  // --- INT4: the native single-cycle case -------------------------------------
  std::vector<int32_t> i4a, i4b;
  for (int i = 0; i < 16; ++i) {
    i4a.push_back(static_cast<int32_t>(rng.uniform_int(-8, 7)));
    i4b.push_back(static_cast<int32_t>(rng.uniform_int(-8, 7)));
  }
  ipu.reset_accumulator();
  std::printf("INT4 dot product: %d cycle(s) -- the architecture's native mode\n",
              ipu.int_accumulate(i4a, i4b, 4, 4));

  std::printf("\nStats: %lld FP ops, %lld INT ops, %lld total cycles, "
              "%lld products EHU-masked\n",
              static_cast<long long>(ipu.stats().fp_ops),
              static_cast<long long>(ipu.stats().int_ops),
              static_cast<long long>(ipu.stats().cycles),
              static_cast<long long>(ipu.stats().masked_products));

  // --- All three decomposition schemes through one config ---------------------
  // §5: the MC alignment optimization is orthogonal to the decomposition
  // scheme.  One DatapathConfig, three schemes, bit-identical values.
  std::printf("\nSame FP16 dot on every decomposition scheme (one DatapathConfig):\n");
  DatapathConfig dcfg;
  dcfg.n_inputs = 16;
  dcfg.adder_tree_width = 16;
  dcfg.software_precision = 28;
  dcfg.multi_cycle = true;
  for (auto scheme : {DecompositionScheme::kTemporal, DecompositionScheme::kSerial,
                      DecompositionScheme::kSpatial}) {
    dcfg.scheme = scheme;
    auto dp = make_datapath(dcfg);
    const DotResult r = dp->dot(a, b);
    std::printf("  %-8s  value=%-12g raw=0x%08X  cycles=%2d  (%d multipliers)\n",
                scheme_name(scheme), r.fp32().to_double(), r.fp32().raw_bits(),
                r.cycles, dp->multipliers());
  }

  // --- Scheme-generic threaded convolution ------------------------------------
  Rng crng(7);
  const Tensor image = random_tensor(crng, 8, 12, 12, ValueDist::kNormal, 1.0);
  const FilterBank bank = random_filters(crng, 8, 8, 3, 3, ValueDist::kNormal, 0.2);
  ConvSpec spec;
  spec.pad = 1;
  ConvEngineConfig ec;
  ec.datapath = dcfg;
  ec.datapath.scheme = DecompositionScheme::kTemporal;
  ec.threads = 0;  // hardware_concurrency
  ConvEngine engine(ec);
  const Tensor out = engine.conv_fp16(image, bank, spec);
  const AgreementStats agree = compare_outputs(out, conv_reference(image, bank, spec));
  std::printf("\nConvEngine (%d threads, temporal scheme): 8x12x12 conv3x3 -> "
              "SNR %.1f dB vs FP32 reference, %lld datapath cycles\n",
              engine.threads(), agree.snr_db,
              static_cast<long long>(engine.stats().cycles));
  return 0;
}
