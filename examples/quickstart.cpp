// Quickstart: the mixed-precision IPU in five minutes.
//
// The high-level API in three types: a Model (layers + real weights), a
// PrecisionPolicy (per-layer FP16/INT choice), and a Session whose one
// RunSpec drives BOTH evaluation paths the paper uses -- the bit-accurate
// numeric forward pass (Session::run) and the cycle-level tile simulation
// (Session::estimate).  A low-level coda shows the same datapath at the
// single-inner-product level across all three decomposition schemes.
//
//   ./examples/quickstart
#include <cstdio>
#include <vector>

#include "api/session.h"
#include "common/rng.h"
#include "core/datapath.h"

using namespace mpipu;

int main() {
  std::printf("== Mixed-precision IPU quickstart ==\n\n");

  // --- A tiny CNN with real weights -----------------------------------------
  Rng rng(7);
  std::vector<ModelLayer> layers(3);
  layers[0] = {"stem", random_filters(rng, 16, 3, 3, 3, ValueDist::kNormal, 0.3),
               ConvSpec{.stride = 1, .pad = 1}, /*relu=*/true, PoolOp::kNone};
  layers[1] = {"body", random_filters(rng, 24, 16, 3, 3, ValueDist::kNormal, 0.1),
               ConvSpec{.stride = 1, .pad = 1}, /*relu=*/true, PoolOp::kMax2};
  layers[2] = {"head", random_filters(rng, 10, 24, 1, 1, ValueDist::kNormal, 0.2),
               ConvSpec{}, /*relu=*/false, PoolOp::kGlobalAvg};
  const Model model = Model::from_layers("tiny-cnn", std::move(layers));
  const Tensor input = random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0);

  // --- One RunSpec: datapath + tile + policy + threads ----------------------
  RunSpec spec;
  spec.datapath.scheme = DecompositionScheme::kTemporal;  // MC-IPU(16)
  spec.datapath.n_inputs = 16;
  spec.datapath.adder_tree_width = 16;
  spec.datapath.software_precision = 28;
  spec.tile = big_tile(16, 28);
  spec.policy = PrecisionPolicy::int8_except_first_last();
  spec.threads = 0;  // hardware_concurrency
  Session session(spec);

  // --- Numeric path: bit-accurate forward pass ------------------------------
  RunOptions opts;
  opts.with_estimate = true;  // attach the cycle-sim view to the report
  const RunReport report = session.run(model, input, opts);

  std::printf("Session::run on MC-IPU(16), temporal scheme, %d thread(s):\n",
              report.threads);
  std::printf("  %-6s %-12s %12s %12s %12s\n", "layer", "precision",
              "SNR vs FP32", "max |err|", "cycles");
  for (const LayerRunReport& l : report.layers) {
    std::printf("  %-6s %-12s %9.1f dB %12.2e %12lld\n", l.layer.c_str(),
                l.precision.c_str(), l.error.snr_db, l.error.max_abs_err,
                static_cast<long long>(l.stats.cycles));
  }
  std::printf("  end-to-end: SNR %.1f dB, %lld FP ops, %lld INT ops, "
              "%lld datapath cycles\n",
              report.end_to_end.snr_db,
              static_cast<long long>(report.totals.fp_ops),
              static_cast<long long>(report.totals.int_ops),
              static_cast<long long>(report.totals.cycles));

  // --- Analytical path: the same RunSpec on the cycle simulator -------------
  std::printf("\nSession::estimate on the %s tile (same RunSpec):\n",
              spec.tile.name.c_str());
  std::printf("  %.3g simulated tile cycles for the FP16 forward pass "
              "(%zu layers)\n",
              report.estimate->total_cycles, report.estimate->layers.size());

  // --- The report serializes through the one JSON emitter -------------------
  const std::string json = report.to_json(0);
  std::printf("\nRunReport::to_json(): %zu bytes, starts \"%.48s...\"\n",
              json.size(), json.c_str());

  // --- Low-level coda: one DatapathConfig, three decomposition schemes ------
  // §5: the MC alignment optimization is orthogonal to the scheme; the
  // presets carry each scheme's native cycle-counting defaults.
  std::printf("\nSame FP16 dot product on every decomposition scheme:\n");
  std::vector<Fp16> a, b;
  for (int i = 0; i < 16; ++i) {
    a.push_back(Fp16::from_double(rng.normal(0.0, 1.0)));
    b.push_back(Fp16::from_double(rng.normal(0.0, 0.05)));
  }
  for (auto scheme : {DecompositionScheme::kTemporal, DecompositionScheme::kSerial,
                      DecompositionScheme::kSpatial}) {
    DatapathConfig dcfg = DatapathConfig::for_scheme(scheme);
    dcfg.n_inputs = 16;
    dcfg.adder_tree_width = 16;
    auto dp = make_datapath(dcfg);
    const DotResult r = dp->dot(a, b);
    std::printf("  %-8s  value=%-12g raw=0x%08X  cycles=%2d  (%d multipliers)\n",
                scheme_name(scheme), r.fp32().to_double(), r.fp32().raw_bits(),
                r.cycles, dp->multipliers());
  }
  std::printf("\nValues are bit-identical across schemes; cycles are where "
              "they differ.\n");
  return 0;
}
