// Serving loop: the load-once / serve-many pattern.
//
// A serving process prepares its fixed weights exactly once at load time
// (Session::compile -> CompiledModel) and then executes requests against
// the immutable plan -- from as many host threads as it likes, since
// CompiledModel::run is reentrant: every call gets private scratch and a
// private per-call stats report.  Contrast examples/quickstart.cpp, which
// uses the conversational Session::run path.
#include <cstdio>
#include <thread>
#include <vector>

#include "api/session.h"
#include "common/rng.h"

using namespace mpipu;

int main() {
  // ---- load time: build the model and compile it once --------------------
  Rng rng(99);
  std::vector<ModelLayer> layers(3);
  layers[0] = {"stem", random_filters(rng, 16, 3, 3, 3, ValueDist::kNormal, 0.3),
               ConvSpec{.stride = 1, .pad = 1}, /*relu=*/true, PoolOp::kNone};
  layers[1] = {"body", random_filters(rng, 24, 16, 3, 3, ValueDist::kNormal, 0.1),
               ConvSpec{.stride = 1, .pad = 1}, /*relu=*/true, PoolOp::kMax2};
  layers[2] = {"head", random_filters(rng, 10, 24, 1, 1, ValueDist::kNormal, 0.2),
               ConvSpec{}, /*relu=*/false, PoolOp::kGlobalAvg};
  const Model model = Model::from_layers("tiny-cnn", std::move(layers));

  RunSpec spec;
  spec.datapath.adder_tree_width = 16;              // MC-IPU(16)
  spec.policy = PrecisionPolicy::int8_except_first_last();
  spec.threads = 1;  // serving: parallelism across requests, not within one

  // compile() resolves the policy per layer, validates everything, and
  // packs the filter planes -- the work Session::run used to redo per call.
  const CompiledModel compiled =
      Session(spec).compile(model, CompileOptions{.input_h = 16, .input_w = 16});
  std::printf("compiled '%s': %zu layers, input %dx%dx%d, fingerprint %016llx\n",
              compiled.model_name().c_str(), compiled.layer_count(),
              compiled.input_c(), compiled.input_h(), compiled.input_w(),
              static_cast<unsigned long long>(compiled.fingerprint()));

  // ---- serve time: concurrent requests against the immutable plan --------
  std::vector<Tensor> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0));
  }

  RunOptions opts;
  opts.compare_reference = false;  // no FP32 shadow chain on the hot path

  std::vector<RunReport> responses(requests.size());
  std::vector<std::thread> workers;
  constexpr int kWorkers = 4;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (size_t q = static_cast<size_t>(w); q < requests.size();
           q += kWorkers) {
        responses[q] = compiled.run(requests[q], opts);  // reentrant
      }
    });
  }
  for (auto& t : workers) t.join();

  for (size_t q = 0; q < responses.size(); ++q) {
    const RunReport& r = responses[q];
    std::printf("request %zu: %lld datapath cycles, top logit %.4f\n", q,
                static_cast<long long>(r.totals.cycles), r.output.data[0]);
  }

  // One-off introspection (error metrics, cycle estimate) stays available:
  // any single call can opt back into the full report.
  RunOptions deep;
  deep.compare_reference = true;
  const RunReport detailed = compiled.run(requests[0], deep);
  std::printf("request 0 end-to-end SNR vs FP32 chain: %.1f dB\n",
              detailed.end_to_end.snr_db);
  return 0;
}
