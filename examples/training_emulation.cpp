// Training-workload scenario: why backward passes stress the FP alignment
// hardware (paper §4.3, Fig. 8/9).
//
// Back-propagated gradients span many octaves, so their FP16 products need
// much larger alignments than forward activations.  This example runs the
// cycle-accurate tile simulator on ResNet-18 forward and backward paths for
// several MC-IPU precisions and cluster sizes, and prints the alignment
// histograms behind the difference.
//
//   ./examples/training_emulation
#include <cstdio>

#include "sim/cycle_sim.h"

using namespace mpipu;

int main() {
  std::printf("== FP16 training emulation: forward vs backward on MC-IPU tiles ==\n\n");

  SimOptions opts;
  opts.sampled_steps = 400;
  const Network fwd = resnet18_forward();
  const Network bwd = resnet18_backward();

  // Alignment distributions (the root cause).
  const auto fh = alignment_histogram(fwd, 8, 4000);
  const auto bh = alignment_histogram(bwd, 8, 4000);
  std::printf("alignment > 8 bits: forward %.2f%%, backward %.2f%%\n",
              100.0 * fh.fraction_above(8), 100.0 * bh.fraction_above(8));
  std::printf("alignment histogram (d: fwd%% / bwd%%):\n  ");
  for (int d = 0; d <= 12; ++d) {
    std::printf("%d:%.0f/%.0f  ", d, 100.0 * fh.fraction(d), 100.0 * bh.fraction(d));
  }
  std::printf("\n\n");

  // Execution time vs baseline for a few design points.
  const TileConfig base = baseline2();
  const auto base_fwd = simulate_network(fwd, base, opts);
  const auto base_bwd = simulate_network(bwd, base, opts);

  std::printf("%-22s %16s %16s\n", "design (w, cluster)", "fwd time (norm)",
              "bwd time (norm)");
  for (int w : {12, 16, 20, 28}) {
    for (int cluster : {1, 64}) {
      const TileConfig tile = big_tile(w, 28, cluster);
      const auto rf = simulate_network(fwd, tile, opts);
      const auto rb = simulate_network(bwd, tile, opts);
      std::printf("MC-IPU(%2d), c=%-2d %18.2fx %16.2fx\n", w, cluster,
                  rf.normalized_to(base_fwd), rb.normalized_to(base_bwd));
    }
  }

  std::printf("\nTakeaways:\n");
  std::printf("  * backward passes multi-cycle far more often than forward ones;\n");
  std::printf("  * small clusters (c=1) recover most of the forward-path loss;\n");
  std::printf("  * training-heavy deployments should pick wider adder trees than\n");
  std::printf("    inference-only ones -- the design-space knob the paper exposes.\n");
  return 0;
}
