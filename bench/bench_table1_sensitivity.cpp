// Table 1 reproduction (§4.5 sensitivity analysis): TOPS/mm^2 and TOPS/W for
// designs built around different multiplier precisions --
//   MC-SER (12x1 serial), MC-IPU4 (4x4), MC-IPU84 (8x4), MC-IPU8 (8x8),
//   NVDLA-like (8x8, 36b ADT), a typical FP16 FMA design (12x12, 36b), and
//   INT-only INT8 / INT4 designs --
// across operand modes A x W in {4x4, 8x4, 8x8, FP16xFP16}.
//
// FP16 rows use the cycle simulator's average alignment inflation for each
// design's safe precision (forward workloads, FP32 accumulation), matching
// the paper's use of effective throughput.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "model/hw_model.h"
#include "sim/cycle_sim.h"

namespace mpipu {
namespace {

/// Average FP16 cycles-per-unit inflation for a design: 1.0 when the adder
/// tree covers the software precision, otherwise the simulated MC-IPU
/// multi-cycle factor for its safe precision.
double fp_inflation(const DesignConfig& d, const SimOptions& opts,
                    std::map<int, double>& cache) {
  if (!d.fp_support) return 1.0;
  if (!d.tile.datapath.multi_cycle) return 1.0;
  const int w = d.tile.datapath.adder_tree_width;
  const auto it = cache.find(w);
  if (it != cache.end()) return it->second;
  double total = 0.0;
  int count = 0;
  for (const auto& net : paper_study_cases()) {
    if (net.name == "resnet18-bwd") continue;
    const auto r = simulate_network(net, big_tile(w, 28, 64), opts);
    double sum = 0.0;
    for (const auto& l : r.layers) sum += l.avg_iteration_cycles;
    total += sum / static_cast<double>(r.layers.size());
    ++count;
  }
  const double v = total / count;
  cache[w] = v;
  return v;
}

}  // namespace
}  // namespace mpipu

int main() {
  using namespace mpipu;
  bench::title("Table 1: TOPS/mm2 and TOPS/W across multiplier/adder-tree designs");
  SimOptions opts;
  opts.sampled_steps = 400;
  std::map<int, double> inflation_cache;

  const std::vector<DesignConfig> designs = {
      mc_ser_design(),  mc_ipu4_design(),    mc_ipu84_design(), mc_ipu8_design(),
      nvdla_table_design(), fp16_fma_design(), int8_only_design(), int4_only_design(),
  };

  bench::Table meta({"design", "MUL", "ADT", "FP16 units/MAC", "FP16 cyc/unit"});
  for (const auto& d : designs) {
    meta.add_row({d.name,
                  std::to_string(d.mult_a_payload) + "x" + std::to_string(d.mult_b_payload),
                  std::to_string(d.tile.datapath.adder_tree_width) + "b",
                  d.fp_support ? std::to_string(d.fp16_units_per_mac) : "-",
                  d.fp_support ? bench::fmt(fp_inflation(d, opts, inflation_cache), 2)
                               : "-"});
  }
  meta.print();

  struct Mode {
    const char* name;
    int a, w;
    bool fp;
  };
  const Mode modes[] = {{"4x4", 4, 4, false},
                        {"8x4", 8, 4, false},
                        {"8x8", 8, 8, false},
                        {"FP16xFP16", 0, 0, true}};

  for (const char* metric : {"TOPS/mm2 (or TFLOPS/mm2)", "TOPS/W (or TFLOPS/W)"}) {
    const bool per_area = std::string(metric).find("mm2") != std::string::npos;
    bench::section(metric);
    std::vector<std::string> headers = {"A x W"};
    for (const auto& d : designs) headers.push_back(d.name);
    bench::Table t(headers);
    for (const auto& m : modes) {
      std::vector<std::string> row = {m.name};
      for (const auto& d : designs) {
        double v;
        if (m.fp) {
          const double infl = fp_inflation(d, opts, inflation_cache);
          v = per_area ? tflops_per_mm2(d, infl) : tflops_per_w(d, infl);
        } else {
          v = per_area ? tops_per_mm2(d, m.a, m.w) : tops_per_w(d, m.a, m.w);
        }
        row.push_back(v == 0.0 ? "-" : bench::fmt(v, per_area ? 1 : 2));
      }
      t.add_row(std::move(row));
    }
    t.print();
  }

  bench::section("Shape checks vs paper Table 1");
  std::printf("- INT4-only leads 4x4 density; MC-IPU4 is the best FP-capable 4x4 design.\n");
  std::printf("- Each design peaks at its native precision; wide multipliers flatten the rows.\n");
  std::printf("- FP16 row favors wide-multiplier designs (MC-IPU8 / NVDLA / FP16 FMA).\n");
  return 0;
}
