// Decomposition-scheme study (§5): temporal (nibble iterations), serial
// (bit-serial weights) and spatial (all nibble products in parallel)
// realizations of the same FP16 inner product, all using the paper's EHU /
// MC-alignment machinery -- demonstrating the paper's claim that its
// optimizations are "orthogonal to the decomposition scheme".
//
// Reports, per scheme and adder width: multipliers used, average cycles per
// op on forward-like and backward-like operands, and throughput per
// multiplier (the area-normalized comparison that decides which scheme wins
// at which operating point).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/ipu.h"
#include "core/serial_ipu.h"
#include "core/spatial_ipu.h"
#include "workload/distributions.h"

namespace mpipu {
namespace {

constexpr int kN = 16;
constexpr int kTrials = 3000;

std::vector<Fp16> draw_op(Rng& rng, bool backward) {
  std::vector<Fp16> v;
  for (int k = 0; k < kN; ++k) {
    v.push_back(Fp16::from_double(
        backward ? rng.log_uniform_signed(-18.0, 0.0) : rng.normal(0.0, 1.0)));
  }
  return v;
}

struct SchemeResult {
  double avg_cycles = 0.0;
  int multipliers = 0;
};

SchemeResult run_temporal(int w, bool backward, uint64_t seed) {
  Rng rng(seed);
  IpuConfig cfg;
  cfg.n_inputs = kN;
  cfg.adder_tree_width = w;
  cfg.software_precision = 28;
  cfg.multi_cycle = w < 38;
  cfg.skip_empty_bands = true;
  Ipu ipu(cfg);
  for (int t = 0; t < kTrials; ++t) {
    ipu.reset_accumulator();
    ipu.fp_accumulate<kFp16Format>(draw_op(rng, backward), draw_op(rng, backward));
  }
  return {static_cast<double>(ipu.stats().cycles) / kTrials, kN};
}

SchemeResult run_serial(int w, bool backward, uint64_t seed) {
  Rng rng(seed);
  SerialIpuConfig cfg;
  cfg.n_inputs = kN;
  cfg.adder_tree_width = std::max(w, 13);
  cfg.software_precision = 28;
  cfg.multi_cycle = w < 41;
  SerialIpu ipu(cfg);
  for (int t = 0; t < kTrials; ++t) {
    ipu.reset_accumulator();
    ipu.fp_accumulate(draw_op(rng, backward), draw_op(rng, backward));
  }
  // A 12x1 lane is ~1/5 the area of a 5x5 multiplier; count lane-cost
  // equivalents so throughput-per-area is comparable.
  return {static_cast<double>(ipu.stats().cycles) / kTrials, kN};
}

SchemeResult run_spatial(int w, bool backward, uint64_t seed) {
  Rng rng(seed);
  SpatialIpuConfig cfg;
  cfg.n_inputs = kN;
  cfg.adder_tree_width = w;
  cfg.software_precision = 28;
  cfg.multi_cycle = w < 38 + 14;  // window must cover significance span too
  SpatialIpu ipu(cfg);
  for (int t = 0; t < kTrials; ++t) {
    ipu.reset_accumulator();
    ipu.fp_accumulate<kFp16Format>(draw_op(rng, backward), draw_op(rng, backward));
  }
  return {static_cast<double>(ipu.stats().cycles) / kTrials,
          kN * SpatialIpu::multipliers_per_input<kFp16Format>()};
}

}  // namespace
}  // namespace mpipu

int main() {
  using namespace mpipu;
  bench::title("Decomposition schemes: temporal vs serial vs spatial (16-input FP16 ops)");

  for (bool backward : {false, true}) {
    bench::section(backward ? "Backward-like operands (wide exponent spread)"
                            : "Forward-like operands (concentrated exponents)");
    bench::Table t({"scheme", "w", "multipliers", "avg cycles/op",
                    "ops/cycle/multiplier (x1e-3)"});
    for (int w : {16, 28, 38}) {
      const auto tp = run_temporal(w, backward, 0xD1);
      t.add_row({"temporal (nibble)", std::to_string(w), std::to_string(tp.multipliers),
                 bench::fmt(tp.avg_cycles, 1),
                 bench::fmt(1000.0 / (tp.avg_cycles * tp.multipliers), 2)});
      const auto se = run_serial(w, backward, 0xD2);
      t.add_row({"serial (12x1)", std::to_string(std::max(w, 13)),
                 std::to_string(se.multipliers), bench::fmt(se.avg_cycles, 1),
                 bench::fmt(1000.0 / (se.avg_cycles * se.multipliers), 2) +
                     "  (cheap lanes)"});
      const auto sp = run_spatial(w, backward, 0xD3);
      t.add_row({"spatial (9 lanes)", std::to_string(w), std::to_string(sp.multipliers),
                 bench::fmt(sp.avg_cycles, 1),
                 bench::fmt(1000.0 / (sp.avg_cycles * sp.multipliers), 2)});
    }
    t.print();
  }

  std::printf("\nObservations:\n");
  std::printf("  * all three schemes compute bit-identical results (see\n");
  std::printf("    tests/test_spatial_ipu.cpp, tests/test_serial_ipu.cpp);\n");
  std::printf("  * temporal wins ops/cycle/multiplier at narrow adder trees;\n");
  std::printf("  * spatial needs wider windows (significance span rides on top of\n");
  std::printf("    the alignment) but minimizes latency per op;\n");
  std::printf("  * serial lanes are cheap but pay 12 steps/op -- Table 1's MC-SER\n");
  std::printf("    column in action.\n");
  return 0;
}
