// Decomposition-scheme study (§5): temporal (nibble iterations), serial
// (bit-serial weights) and spatial (all nibble products in parallel)
// realizations of the same FP16 inner product, all using the paper's EHU /
// MC-alignment machinery -- demonstrating the paper's claim that its
// optimizations are "orthogonal to the decomposition scheme".
//
// Every scheme runs through the single unified entry point: one
// `DatapathConfig` with only the scheme enum varied, dispatched via
// `make_datapath` (src/core/datapath.h).
//
// Reports, per scheme and adder width: multipliers used, average cycles per
// op on forward-like and backward-like operands, and throughput per
// multiplier (the area-normalized comparison that decides which scheme wins
// at which operating point).
#include <cstdio>
#include <vector>

#include "api/session.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/datapath.h"
#include "workload/distributions.h"

namespace mpipu {
namespace {

constexpr int kN = 16;
constexpr int kTrials = 3000;

std::vector<Fp16> draw_op(Rng& rng, bool backward) {
  std::vector<Fp16> v;
  for (int k = 0; k < kN; ++k) {
    v.push_back(Fp16::from_double(
        backward ? rng.log_uniform_signed(-18.0, 0.0) : rng.normal(0.0, 1.0)));
  }
  return v;
}

struct SchemeResult {
  double avg_cycles = 0.0;
  int multipliers = 0;
  int effective_w = 0;
};

/// One DatapathConfig, any scheme: the unified entry point under test.
SchemeResult run_scheme(DecompositionScheme scheme, int w, bool backward,
                        uint64_t seed) {
  Rng rng(seed);
  // The preset carries each scheme's native cycle-counting defaults
  // (occupied-band counting for spatial); temporal additionally opts into
  // the §3.2 partition view here so all banded schemes count alike.
  DatapathConfig cfg = DatapathConfig::for_scheme(scheme);
  cfg.n_inputs = kN;
  cfg.adder_tree_width = w;
  cfg.software_precision = 28;
  // Single-cycle once the window covers every unmasked shift; the spatial
  // window must additionally cover the 14-bit nibble-significance span.
  const int single_cycle_w =
      scheme == DecompositionScheme::kSpatial ? 38 + 14
      : scheme == DecompositionScheme::kSerial ? 41
                                               : 38;
  cfg.multi_cycle = w < single_cycle_w;
  if (scheme == DecompositionScheme::kTemporal) cfg.skip_empty_bands = true;
  auto dp = make_datapath(cfg);
  int64_t cycles = 0;
  for (int t = 0; t < kTrials; ++t) {
    cycles += dp->dot(draw_op(rng, backward), draw_op(rng, backward)).cycles;
  }
  return {static_cast<double>(cycles) / kTrials, dp->multipliers(),
          cfg.effective_adder_tree_width()};
}

}  // namespace
}  // namespace mpipu

int main() {
  using namespace mpipu;
  bench::title("Decomposition schemes: temporal vs serial vs spatial (16-input FP16 ops)");

  for (bool backward : {false, true}) {
    bench::section(backward ? "Backward-like operands (wide exponent spread)"
                            : "Forward-like operands (concentrated exponents)");
    bench::Table t({"scheme", "w", "multipliers", "avg cycles/op",
                    "ops/cycle/multiplier (x1e-3)"});
    for (int w : {16, 28, 38}) {
      uint64_t seed = 0xD1;
      for (auto scheme : {DecompositionScheme::kTemporal,
                          DecompositionScheme::kSerial,
                          DecompositionScheme::kSpatial}) {
        const auto r = run_scheme(scheme, w, backward, seed++);
        const char* extra =
            scheme == DecompositionScheme::kSerial ? "  (cheap lanes)" : "";
        t.add_row({scheme_name(scheme), std::to_string(r.effective_w),
                   std::to_string(r.multipliers), bench::fmt(r.avg_cycles, 1),
                   bench::fmt(1000.0 / (r.avg_cycles * r.multipliers), 2) +
                       extra});
      }
    }
    t.print();
  }

  // --- Network-level view through the high-level API -------------------------
  // The same comparison at §4.1 granularity: one Session per scheme, each
  // estimating ResNet-18's forward shape table on a big tile whose IPUs run
  // that scheme (one RunSpec drives the whole cycle-sim path).
  bench::section("ResNet-18 forward, big tile, per scheme (Session::estimate)");
  {
    const Model model = Model::from_network(resnet18_forward());
    bench::Table t({"scheme", "total tile cycles", "vs temporal"});
    double temporal_cycles = 0.0;
    for (auto scheme : {DecompositionScheme::kTemporal,
                        DecompositionScheme::kSerial,
                        DecompositionScheme::kSpatial}) {
      RunSpec spec;
      spec.datapath = DatapathConfig::for_scheme(scheme);
      spec.datapath.n_inputs = 16;
      spec.datapath.adder_tree_width = 16;
      // Count occupied bands on every scheme (serial ignores the flag) so
      // the cross-scheme ratios compare like for like -- the same choice the
      // micro section above and the sim tiles (make_tile) make.
      spec.datapath.skip_empty_bands = true;
      spec.tile = big_tile(16, 28);
      spec.sim.sampled_steps = 200;
      const NetworkSimResult r = Session(spec).estimate(model);
      if (scheme == DecompositionScheme::kTemporal) temporal_cycles = r.total_cycles;
      t.add_row({scheme_name(scheme), bench::fmt_sci(r.total_cycles),
                 bench::fmt(r.total_cycles / temporal_cycles, 2) + "x"});
    }
    t.print();
  }

  std::printf("\nObservations:\n");
  std::printf("  * all three schemes share one DatapathConfig entry point and\n");
  std::printf("    compute bit-identical results (tests/test_datapath.cpp);\n");
  std::printf("  * temporal wins ops/cycle/multiplier at narrow adder trees;\n");
  std::printf("  * spatial needs wider windows (significance span rides on top of\n");
  std::printf("    the alignment) but minimizes latency per op;\n");
  std::printf("  * serial lanes are cheap but pay 12 steps/op -- Table 1's MC-SER\n");
  std::printf("    column in action.\n");
  return 0;
}
