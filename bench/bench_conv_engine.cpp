// Wall-clock comparison of the convolution paths on the quickstart-style
// workload: the seed's legacy single-threaded per-pixel loop (re-created
// here verbatim as the "before" baseline), the engine at 1 thread, and the
// engine at >= 4 threads.  Verifies all paths produce bit-identical output
// before timing them.
//
//   ./bench/bench_conv_engine
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "nn/conv.h"

namespace mpipu {
namespace {

/// The seed's conv_ipu_fp16 loop before the ConvEngine refactor: one Ipu,
/// operands re-rounded to FP16 for every output pixel that touches them.
Tensor legacy_conv_ipu_fp16(const Tensor& input, const FilterBank& filters,
                            const ConvSpec& spec, const IpuConfig& ipu_cfg,
                            AccumKind accum) {
  const int ho = spec.out_dim(input.h, filters.kh);
  const int wo = spec.out_dim(input.w, filters.kw);
  Tensor out(filters.cout, ho, wo);
  Ipu ipu(ipu_cfg);
  std::vector<Fp16> fa, fb;
  for (int co = 0; co < filters.cout; ++co) {
    for (int y = 0; y < ho; ++y) {
      for (int x = 0; x < wo; ++x) {
        ipu.reset_accumulator();
        fa.clear();
        fb.clear();
        auto flush = [&] {
          if (!fa.empty()) {
            ipu.fp_accumulate<kFp16Format>(fa, fb);
            fa.clear();
            fb.clear();
          }
        };
        for (int ky = 0; ky < filters.kh; ++ky) {
          for (int kx = 0; kx < filters.kw; ++kx) {
            const int iy = y * spec.stride + ky - spec.pad;
            const int ix = x * spec.stride + kx - spec.pad;
            if (iy < 0 || iy >= input.h || ix < 0 || ix >= input.w) continue;
            for (int ci = 0; ci < input.c; ++ci) {
              fa.push_back(Fp16::from_double(input.at(ci, iy, ix)));
              fb.push_back(Fp16::from_double(filters.at(co, ci, ky, kx)));
              if (static_cast<int>(fa.size()) == ipu_cfg.n_inputs) flush();
            }
          }
        }
        flush();
        out.at(co, y, x) = accum == AccumKind::kFp16
                               ? ipu.read_fp<kFp16Format>().to_double()
                               : ipu.read_fp<kFp32Format>().to_double();
      }
    }
  }
  return out;
}

double time_seconds(const std::function<Tensor()>& fn, Tensor* out) {
  const auto t0 = std::chrono::steady_clock::now();
  *out = fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace
}  // namespace mpipu

int main() {
  using namespace mpipu;
  bench::title("ConvEngine vs legacy single-threaded conv_ipu_fp16");

  // Quickstart-style workload scaled to a measurable size: MC-IPU(16),
  // FP32-grade software precision.
  Rng rng(42);
  const Tensor input = random_tensor(rng, 16, 32, 32, ValueDist::kNormal, 1.0);
  const FilterBank filters =
      random_filters(rng, 16, 16, 3, 3, ValueDist::kNormal, 0.2);
  ConvSpec spec;
  spec.pad = 1;

  IpuConfig icfg;
  icfg.n_inputs = 16;
  icfg.adder_tree_width = 16;
  icfg.software_precision = 28;
  icfg.multi_cycle = true;

  const int hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("workload: 16x32x32 input, 16 filters 3x3, pad 1 "
              "(%d output values); hardware_concurrency = %d\n\n",
              16 * 32 * 32, hw);

  Tensor legacy_out, engine1_out, engine4_out, enginehw_out;
  const double t_legacy = time_seconds(
      [&] {
        return legacy_conv_ipu_fp16(input, filters, spec, icfg, AccumKind::kFp32);
      },
      &legacy_out);

  auto run_engine = [&](int threads, Tensor* out) {
    ConvEngineConfig ec;
    ec.datapath = datapath_config_from_ipu(icfg);
    ec.accum = AccumKind::kFp32;
    ec.threads = threads;
    ConvEngine engine(ec);
    return time_seconds([&] { return engine.conv_fp16(input, filters, spec); },
                        out);
  };
  const double t_engine1 = run_engine(1, &engine1_out);
  const double t_engine4 = run_engine(4, &engine4_out);
  const double t_enginehw = run_engine(hw, &enginehw_out);

  for (size_t i = 0; i < legacy_out.data.size(); ++i) {
    if (legacy_out.data[i] != engine1_out.data[i] ||
        legacy_out.data[i] != engine4_out.data[i] ||
        legacy_out.data[i] != enginehw_out.data[i]) {
      std::printf("BIT MISMATCH at %zu\n", i);
      return 1;
    }
  }
  std::printf("all paths bit-identical: yes\n\n");

  bench::Table t({"path", "wall seconds", "speedup vs legacy"});
  t.add_row({"legacy loop (seed, 1 thread)", bench::fmt(t_legacy, 3), "1.00x"});
  t.add_row({"ConvEngine, 1 thread", bench::fmt(t_engine1, 3),
             bench::fmt(t_legacy / t_engine1, 2) + "x"});
  t.add_row({"ConvEngine, 4 threads", bench::fmt(t_engine4, 3),
             bench::fmt(t_legacy / t_engine4, 2) + "x"});
  t.add_row({"ConvEngine, hw threads (" + std::to_string(hw) + ")",
             bench::fmt(t_enginehw, 3), bench::fmt(t_legacy / t_enginehw, 2) + "x"});
  t.print();
  return 0;
}
