// Wall-clock comparison of the convolution paths on the quickstart-style
// workload, tracking the perf trajectory of the conv hot loop:
//
//   * the seed's legacy single-threaded per-pixel loop (re-created here
//     verbatim as the "before everything" baseline; temporal scheme only),
//   * the PR 2 per-op engine loop (re-created here verbatim: per-pixel
//     patch gather of Fp16 values, per-op decode + decompose + allocating
//     EHU inside each scheme's original fp_accumulate entry point),
//   * the prepared-operand ConvEngine (decode once, allocate never) at 1
//     and hardware_concurrency threads,
//
// for every decomposition scheme.  Verifies all paths produce bit-identical
// tensors and matching cycle/op counts before timing them.
//
//   ./bench_conv_engine [--smoke] [--json [path]]
//
// --smoke shrinks the workload for CI; --json writes the numbers (plus the
// prepared-vs-per-op and prepared-vs-legacy speedups) to BENCH_conv.json
// (or the given path) through the repo's single JSON emitter.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/json.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/serial_ipu.h"
#include "core/simd/simd.h"
#include "core/spatial_ipu.h"
#include "nn/conv.h"

namespace mpipu {
namespace {

/// The seed's conv_ipu_fp16 loop before the ConvEngine refactor: one Ipu,
/// operands re-rounded to FP16 for every output pixel that touches them.
Tensor legacy_conv_ipu_fp16(const Tensor& input, const FilterBank& filters,
                            const ConvSpec& spec, const IpuConfig& ipu_cfg,
                            AccumKind accum) {
  const int ho = spec.out_dim(input.h, filters.kh);
  const int wo = spec.out_dim(input.w, filters.kw);
  Tensor out(filters.cout, ho, wo);
  Ipu ipu(ipu_cfg);
  std::vector<Fp16> fa, fb;
  for (int co = 0; co < filters.cout; ++co) {
    for (int y = 0; y < ho; ++y) {
      for (int x = 0; x < wo; ++x) {
        ipu.reset_accumulator();
        fa.clear();
        fb.clear();
        auto flush = [&] {
          if (!fa.empty()) {
            ipu.fp_accumulate<kFp16Format>(fa, fb);
            fa.clear();
            fb.clear();
          }
        };
        for (int ky = 0; ky < filters.kh; ++ky) {
          for (int kx = 0; kx < filters.kw; ++kx) {
            const int iy = y * spec.stride + ky - spec.pad;
            const int ix = x * spec.stride + kx - spec.pad;
            if (iy < 0 || iy >= input.h || ix < 0 || ix >= input.w) continue;
            for (int ci = 0; ci < input.c; ++ci) {
              fa.push_back(Fp16::from_double(input.at(ci, iy, ix)));
              fb.push_back(Fp16::from_double(filters.at(co, ci, ky, kx)));
              if (static_cast<int>(fa.size()) == ipu_cfg.n_inputs) flush();
            }
          }
        }
        flush();
        out.at(co, y, x) = accum == AccumKind::kFp16
                               ? ipu.read_fp<kFp16Format>().to_double()
                               : ipu.read_fp<kFp32Format>().to_double();
      }
    }
  }
  return out;
}

// --- PR 2 per-op engine loop, re-created as the per-scheme baseline ---------

/// Patch geometry of one output pixel (PR 2's gather): flat input indices
/// and filter-block offsets in the canonical ky -> kx -> ci order.
struct PatchIndices {
  std::vector<int32_t> input;
  std::vector<int32_t> filter_off;

  void build(const Tensor& input_t, const FilterBank& f, const ConvSpec& spec,
             int y, int x) {
    input.clear();
    filter_off.clear();
    for (int ky = 0; ky < f.kh; ++ky) {
      for (int kx = 0; kx < f.kw; ++kx) {
        const int iy = y * spec.stride + ky - spec.pad;
        const int ix = x * spec.stride + kx - spec.pad;
        if (iy < 0 || iy >= input_t.h || ix < 0 || ix >= input_t.w) continue;
        for (int ci = 0; ci < input_t.c; ++ci) {
          input.push_back(
              static_cast<int32_t>((static_cast<size_t>(ci) * input_t.h + iy) *
                                       static_cast<size_t>(input_t.w) +
                                   ix));
          filter_off.push_back(static_cast<int32_t>(
              (static_cast<size_t>(ci) * f.kh + ky) * static_cast<size_t>(f.kw) +
              kx));
        }
      }
    }
  }
};

/// One per-op unit: reset / accumulate-a-chunk / read, plus the counters
/// the bit-identity check compares against the prepared engine.  Owns the
/// underlying scheme instance (only the scheme under test is constructed).
struct PerOpUnit {
  std::shared_ptr<void> holder;
  std::function<void()> reset;
  std::function<void(std::span<const Fp16>, std::span<const Fp16>)> accumulate;
  std::function<double()> read_fp32;
  std::function<int64_t()> cycles;
  std::function<int64_t()> fp_ops;
};

PerOpUnit make_per_op_unit(const DatapathConfig& cfg) {
  switch (cfg.scheme) {
    case DecompositionScheme::kTemporal: {
      IpuConfig c;
      c.n_inputs = cfg.n_inputs;
      c.adder_tree_width = cfg.effective_adder_tree_width();
      c.software_precision = cfg.software_precision;
      c.multi_cycle = cfg.multi_cycle;
      c.skip_empty_bands = cfg.skip_empty_bands;
      auto ipu = std::make_shared<Ipu>(c);
      return {ipu,
              [ipu] { ipu->reset_accumulator(); },
              [ipu](std::span<const Fp16> a, std::span<const Fp16> b) {
                ipu->fp_accumulate<kFp16Format>(a, b);
              },
              [ipu] { return ipu->read_fp<kFp32Format>().to_double(); },
              [ipu] { return ipu->stats().cycles; },
              [ipu] { return ipu->stats().fp_ops; }};
    }
    case DecompositionScheme::kSerial: {
      SerialIpuConfig c;
      c.n_inputs = cfg.n_inputs;
      c.adder_tree_width = cfg.effective_adder_tree_width();
      c.software_precision = cfg.software_precision;
      c.multi_cycle = cfg.multi_cycle;
      auto ipu = std::make_shared<SerialIpu>(c);
      return {ipu,
              [ipu] { ipu->reset_accumulator(); },
              [ipu](std::span<const Fp16> a, std::span<const Fp16> b) {
                ipu->fp_accumulate(a, b);
              },
              [ipu] { return ipu->read_fp<kFp32Format>().to_double(); },
              [ipu] { return ipu->stats().cycles; },
              [ipu] { return ipu->stats().fp_ops; }};
    }
    case DecompositionScheme::kSpatial: {
      SpatialIpuConfig c;
      c.n_inputs = cfg.n_inputs;
      c.adder_tree_width = cfg.effective_adder_tree_width();
      c.software_precision = cfg.software_precision;
      c.multi_cycle = cfg.multi_cycle;
      c.skip_empty_bands = cfg.skip_empty_bands;
      auto ipu = std::make_shared<SpatialIpu>(c);
      return {ipu,
              [ipu] { ipu->reset_accumulator(); },
              [ipu](std::span<const Fp16> a, std::span<const Fp16> b) {
                ipu->fp_accumulate<kFp16Format>(a, b);
              },
              [ipu] { return ipu->read_fp<kFp32Format>().to_double(); },
              [ipu] { return ipu->stats().cycles; },
              [ipu] { return ipu->stats().fp_ops; }};
    }
  }
  return {};
}

/// PR 2's ConvEngine::conv_fp16 inner loop, single-threaded: tensors
/// rounded to FP16 once, every pixel's operand stream gathered through
/// PatchIndices, every chunk run through the scheme's original per-op
/// entry point (per-op decode + decompose + allocating EHU).
Tensor per_op_conv_fp16(const PerOpUnit& unit, int n_inputs, const Tensor& input,
                        const FilterBank& filters, const ConvSpec& spec) {
  std::vector<Fp16> in16(input.data.size());
  for (size_t i = 0; i < input.data.size(); ++i) {
    in16[i] = Fp16::from_double(input.data[i]);
  }
  std::vector<Fp16> flt16(filters.data.size());
  for (size_t i = 0; i < filters.data.size(); ++i) {
    flt16[i] = Fp16::from_double(filters.data[i]);
  }

  const int ho = spec.out_dim(input.h, filters.kh);
  const int wo = spec.out_dim(input.w, filters.kw);
  Tensor out(filters.cout, ho, wo);
  const size_t filter_block =
      static_cast<size_t>(filters.cin) * filters.kh * filters.kw;
  PatchIndices patch;
  std::vector<Fp16> pa, pb;
  for (int64_t p = 0; p < static_cast<int64_t>(ho) * wo; ++p) {
    const int y = static_cast<int>(p / wo);
    const int x = static_cast<int>(p % wo);
    patch.build(input, filters, spec, y, x);
    const int len = static_cast<int>(patch.input.size());
    pa.resize(static_cast<size_t>(len));
    pb.resize(static_cast<size_t>(len));
    for (int t = 0; t < len; ++t) {
      pa[static_cast<size_t>(t)] =
          in16[static_cast<size_t>(patch.input[static_cast<size_t>(t)])];
    }
    for (int co = 0; co < filters.cout; ++co) {
      const size_t base = static_cast<size_t>(co) * filter_block;
      for (int t = 0; t < len; ++t) {
        pb[static_cast<size_t>(t)] =
            flt16[base +
                  static_cast<size_t>(patch.filter_off[static_cast<size_t>(t)])];
      }
      unit.reset();
      for (int c0 = 0; c0 < len; c0 += n_inputs) {
        const auto chunk = static_cast<size_t>(std::min(n_inputs, len - c0));
        unit.accumulate(
            std::span<const Fp16>(pa).subspan(static_cast<size_t>(c0), chunk),
            std::span<const Fp16>(pb).subspan(static_cast<size_t>(c0), chunk));
      }
      out.at(co, y, x) = unit.read_fp32();
    }
  }
  return out;
}

double time_seconds(const std::function<Tensor()>& fn, Tensor* out) {
  const auto t0 = std::chrono::steady_clock::now();
  *out = fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

using bench::tensors_identical;

}  // namespace
}  // namespace mpipu

int main(int argc, char** argv) {
  using namespace mpipu;

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i]
                                                          : "BENCH_conv.json";
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json [path]]\n", argv[0]);
      return 2;
    }
  }

  bench::title("Prepared-operand ConvEngine vs per-op loop vs legacy seed loop");

  // Quickstart-style workload (MC-IPU(16), FP32-grade software precision);
  // --smoke shrinks it so CI can afford every scheme on every push.
  Rng rng(42);
  const int ci = smoke ? 6 : 16, hw_dim = smoke ? 12 : 32, co = smoke ? 6 : 16;
  const Tensor input =
      random_tensor(rng, ci, hw_dim, hw_dim, ValueDist::kNormal, 1.0);
  const FilterBank filters =
      random_filters(rng, co, ci, 3, 3, ValueDist::kNormal, 0.2);
  ConvSpec spec;
  spec.pad = 1;

  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  std::printf("workload: %dx%dx%d input, %d filters 3x3, pad 1 (%d output "
              "values); hardware_concurrency = %d%s\n\n",
              ci, hw_dim, hw_dim, co, co * hw_dim * hw_dim, hw,
              smoke ? "; --smoke" : "");

  Json root = Json::object();
  root.set("bench", "conv_engine");
  root.set("smoke", smoke);
  Json workload = Json::object();
  workload.set("input", std::to_string(ci) + "x" + std::to_string(hw_dim) + "x" +
                            std::to_string(hw_dim));
  workload.set("filters", std::to_string(co) + "x" + std::to_string(ci) + "x3x3");
  workload.set("pad", 1);
  root.set("workload", std::move(workload));
  root.set("hardware_concurrency", hw);
  root.set("kernel_backend", simd::backend_name());
  Json schemes_json = Json::array();

  // With a single hardware thread the "hw threads" leg would just repeat
  // the 1-thread run under a pool wrapper; skip it rather than report a
  // duplicate measurement as if it said something about scaling.
  const bool run_hw = hw > 1;
  if (!run_hw) {
    std::printf(
        "hardware_concurrency = 1: skipping the hw-threads rows (they would "
        "duplicate the 1-thread measurement)\n\n");
  }

  bench::Table table({"scheme", "path", "wall seconds", "speedup vs per-op"});
  bool all_identical = true;
  int rc = 0;

  // Legacy seed loop: temporal only (the seed had no other scheme).
  IpuConfig icfg;
  icfg.n_inputs = 16;
  icfg.adder_tree_width = 16;
  icfg.software_precision = 28;
  icfg.multi_cycle = true;
  Tensor legacy_out;
  const double t_legacy = time_seconds(
      [&] {
        return legacy_conv_ipu_fp16(input, filters, spec, icfg, AccumKind::kFp32);
      },
      &legacy_out);

  for (auto scheme : {DecompositionScheme::kTemporal, DecompositionScheme::kSerial,
                      DecompositionScheme::kSpatial}) {
    DatapathConfig cfg = DatapathConfig::for_scheme(scheme);
    cfg.n_inputs = 16;
    cfg.adder_tree_width = 16;
    cfg.software_precision = 28;
    cfg.multi_cycle = true;

    // A direct scheme instance behind the per-op baseline (the PR 2 engine
    // drove these exact entry points through its virtual wrapper).
    const PerOpUnit unit = make_per_op_unit(cfg);

    Tensor per_op_out, prep1_out, prephw_out;
    const double t_per_op = time_seconds(
        [&] { return per_op_conv_fp16(unit, cfg.n_inputs, input, filters, spec); },
        &per_op_out);

    ConvEngineConfig ec;
    ec.datapath = cfg;
    ec.accum = AccumKind::kFp32;
    ec.threads = 1;
    ConvEngine engine1(ec);
    const double t_prep1 = time_seconds(
        [&] { return engine1.conv_fp16(input, filters, spec); }, &prep1_out);

    bool identical = tensors_identical(per_op_out, prep1_out) &&
                     unit.cycles() == engine1.stats().cycles &&
                     unit.fp_ops() == engine1.stats().fp_ops;
    double t_prephw = 0.0;
    if (run_hw) {
      ec.threads = hw;
      ConvEngine enginehw(ec);
      const double t = time_seconds(
          [&] { return enginehw.conv_fp16(input, filters, spec); }, &prephw_out);
      t_prephw = t;
      identical = identical && tensors_identical(per_op_out, prephw_out) &&
                  engine1.stats() == enginehw.stats();
    }
    if (scheme == DecompositionScheme::kTemporal) {
      identical = identical && tensors_identical(legacy_out, prep1_out);
    }
    if (!identical) {
      std::printf("BIT MISMATCH on %s scheme\n", scheme_name(scheme));
      all_identical = false;
      rc = 1;
    }

    table.add_row({scheme_name(scheme), "per-op loop (PR 2), 1 thread",
                   bench::fmt(t_per_op, 3), "1.00x"});
    table.add_row({scheme_name(scheme), "prepared engine, 1 thread",
                   bench::fmt(t_prep1, 3),
                   bench::fmt(t_per_op / t_prep1, 2) + "x"});
    if (run_hw) {
      table.add_row({scheme_name(scheme),
                     "prepared engine, hw threads (" + std::to_string(hw) + ")",
                     bench::fmt(t_prephw, 3),
                     bench::fmt(t_per_op / t_prephw, 2) + "x"});
    }

    Json s = Json::object();
    s.set("scheme", scheme_name(scheme));
    s.set("per_op_1t_seconds", t_per_op);
    s.set("prepared_1t_seconds", t_prep1);
    s.set("speedup_prepared_1t_vs_per_op", t_per_op / t_prep1);
    if (run_hw) {
      s.set("prepared_hw_seconds", t_prephw);
      s.set("speedup_prepared_hw_vs_per_op", t_per_op / t_prephw);
    }
    if (scheme == DecompositionScheme::kTemporal) {
      s.set("legacy_seed_seconds", t_legacy);
      s.set("speedup_prepared_1t_vs_legacy", t_legacy / t_prep1);
    }
    s.set("bit_identical", identical);
    schemes_json.push(std::move(s));
  }

  std::printf("all paths bit-identical (tensors, cycles, op counts): %s\n\n",
              all_identical ? "yes" : "NO");
  table.print();
  std::printf("\nlegacy seed loop (temporal, 1 thread): %s s\n",
              bench::fmt(t_legacy, 3).c_str());

  root.set("schemes", std::move(schemes_json));
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << root.dump() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return rc;
}
