// Serving runtime throughput/latency: dynamic batching + coalescing vs the
// closed-loop one-request-at-a-time loop every caller hand-rolls today.
//
// Two load shapes, measured on the SAME request sequence:
//
//   * closed-loop baseline -- a single client issuing compiled.run(),
//     waiting, issuing again.  Its arrival rate adapts to the service rate,
//     so this is exactly the hand-rolled serving loop of bench_serving and
//     the examples;
//   * batched runtime -- the same requests pushed through ServingRuntime's
//     bounded queue: the worker gathers up to max_batch queued same-model
//     requests per dispatch and coalesces byte-identical inputs so
//     duplicates execute ONCE (exact: execution is deterministic).
//
// Request streams are zipfian over a small input catalog (the hot-key skew
// of production traffic: a few inputs dominate) -- the regime coalescing
// exists for.  An all-distinct stream is measured and reported alongside,
// honestly: with nothing to coalesce on one core, the runtime matches the
// closed loop (~1.0x) and buys queueing/SLO machinery, not throughput.
// An open-loop Poisson sweep (below/at/above capacity) plus a bursty point
// reports the SLO picture: p50/p95/p99 latency, shed counts, batch sizes.
//
// Outputs are verified byte-identical (tensors AND per-layer stats) between
// the batched runtime and direct serial execution before anything is
// timed; the process exits non-zero if that gate fails.
//
// --soak adds a fixed-duration zipf soak with a mid-run fault window: the
// middle third of the run injects execution faults (FaultPlan), the circuit
// breaker opens, and the bench measures how long after the faults clear the
// runtime takes to recover to its pre-fault throughput.  The soak section
// lands in BENCH_server.json.  --no-soak-faults keeps the soak but disables
// the fault window (CI smoke: deterministic, no chaos on shared runners).
//
//   ./bench_server [--smoke] [--json [path]] [--soak] [--no-soak-faults]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "serve/fault.h"

#include "api/json.h"
#include "api/session.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/simd/simd.h"
#include "serve/serving_runtime.h"
#include "serve/traffic.h"

namespace mpipu {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

using bench::tensors_identical;

/// FC-style serving head (the weights-dominant shape of bench_serving).
Model serving_head(Rng& rng, int c0, int c1, int c_out) {
  std::vector<ModelLayer> layers(3);
  layers[0].name = "fc1";
  layers[0].filters = random_filters(rng, c1, c0, 1, 1, ValueDist::kNormal, 0.15);
  layers[0].relu = true;
  layers[1].name = "fc2";
  layers[1].filters = random_filters(rng, c1, c1, 1, 1, ValueDist::kNormal, 0.1);
  layers[1].relu = true;
  layers[2].name = "logits";
  layers[2].filters = random_filters(rng, c_out, c1, 1, 1, ValueDist::kNormal, 0.1);
  return Model::from_layers("server-head", std::move(layers));
}

struct LoadResult {
  std::string label;
  int requests = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t coalesced = 0;
  double elapsed_s = 0.0;
  double throughput_rps = 0.0;   ///< completed / elapsed
  double mean_batch = 0.0;
  bench::LatencySummary latency;
  size_t queue_high_water = 0;
};

Json to_json(const LoadResult& r) {
  Json j = Json::object();
  j.set("label", r.label);
  j.set("requests", r.requests);
  j.set("completed", static_cast<double>(r.completed));
  j.set("shed", static_cast<double>(r.shed));
  j.set("coalesced", static_cast<double>(r.coalesced));
  j.set("elapsed_s", r.elapsed_s);
  j.set("throughput_rps", r.throughput_rps);
  j.set("mean_batch_size", r.mean_batch);
  j.set("latency_p50_s", r.latency.p50_s);
  j.set("latency_p95_s", r.latency.p95_s);
  j.set("latency_p99_s", r.latency.p99_s);
  j.set("queue_high_water", static_cast<double>(r.queue_high_water));
  return j;
}

/// Closed-loop one-at-a-time loop over the request sequence: the hand-
/// rolled baseline.  Latency == service time (the client never queues).
LoadResult run_closed_loop(const CompiledModel& compiled,
                           const std::vector<Tensor>& catalog,
                           const std::vector<int>& sequence,
                           const RunOptions& opts) {
  LoadResult r;
  r.label = "closed-loop 1-at-a-time";
  r.requests = static_cast<int>(sequence.size());
  std::vector<double> lats;
  lats.reserve(sequence.size());
  const double t0 = now_seconds();
  for (int idx : sequence) {
    const double s = now_seconds();
    const RunReport rep = compiled.run(catalog[static_cast<size_t>(idx)], opts);
    (void)rep;
    lats.push_back(now_seconds() - s);
  }
  r.elapsed_s = now_seconds() - t0;
  r.completed = static_cast<uint64_t>(sequence.size());
  r.throughput_rps = static_cast<double>(r.completed) / r.elapsed_s;
  r.mean_batch = 1.0;
  r.latency = bench::summarize_latencies(std::move(lats));
  return r;
}

/// Push the request sequence through a fresh ServingRuntime.  With
/// `arrivals` empty the client submits as fast as it can (fully saturating
/// open loop); otherwise submissions replay the arrival schedule.
LoadResult run_batched(const RunSpec& spec, const serve::ServerConfig& cfg,
                       const Model& model, const std::vector<Tensor>& catalog,
                       const std::vector<int>& sequence, std::string label,
                       const std::vector<double>& arrivals = {}) {
  serve::ServingRuntime rt(spec, cfg);
  const serve::ModelHandle h =
      rt.load(model, catalog[0].h, catalog[0].w);

  LoadResult r;
  r.label = std::move(label);
  r.requests = static_cast<int>(sequence.size());
  std::vector<std::future<serve::ServeResult>> futs;
  futs.reserve(sequence.size());
  const double t0 = now_seconds();
  for (size_t i = 0; i < sequence.size(); ++i) {
    if (!arrivals.empty()) {
      const double target = t0 + arrivals[i];
      while (now_seconds() < target) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
    futs.push_back(
        rt.submit(h, catalog[static_cast<size_t>(sequence[i])]));
  }
  std::vector<double> lats;
  lats.reserve(futs.size());
  for (auto& f : futs) {
    const serve::ServeResult res = f.get();
    if (res.ok()) lats.push_back(res.total_s);
  }
  r.elapsed_s = now_seconds() - t0;
  const serve::ServerMetrics m = rt.metrics();
  r.completed = m.completed;
  r.shed = m.shed_queue_full + m.shed_deadline + m.shed_shutdown;
  r.coalesced = m.coalesced;
  r.throughput_rps = static_cast<double>(r.completed) / r.elapsed_s;
  r.mean_batch = m.mean_batch_size;
  r.queue_high_water = m.queue_high_water;
  r.latency = bench::summarize_latencies(std::move(lats));
  return r;
}

/// Fixed-duration soak with a mid-run fault window (the --soak leg).
struct SoakResult {
  bool faults_enabled = false;
  double duration_s = 0.0;
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;        ///< kExecError resolutions (injected faults)
  uint64_t shed_unhealthy = 0;
  uint64_t breaker_opened = 0;
  double pre_fault_rps = 0.0;   ///< first third (clean)
  double fault_rps = 0.0;       ///< middle third (faults firing)
  double post_fault_rps = 0.0;  ///< last third (faults cleared)
  /// Faults-cleared -> first 100 ms bucket back at >= 70% of the pre-fault
  /// rate.  0 when faults are disabled; negative if it never recovered.
  double recovery_s = 0.0;
  bool conserved = false;  ///< invariant held in EVERY sampled snapshot
};

Json to_json(const SoakResult& r) {
  Json j = Json::object();
  j.set("faults_enabled", r.faults_enabled);
  j.set("duration_s", r.duration_s);
  j.set("submitted", static_cast<double>(r.submitted));
  j.set("completed", static_cast<double>(r.completed));
  j.set("failed", static_cast<double>(r.failed));
  j.set("shed_unhealthy", static_cast<double>(r.shed_unhealthy));
  j.set("breaker_opened", static_cast<double>(r.breaker_opened));
  j.set("pre_fault_rps", r.pre_fault_rps);
  j.set("fault_rps", r.fault_rps);
  j.set("post_fault_rps", r.post_fault_rps);
  j.set("recovery_s", r.recovery_s);
  j.set("conserved", r.conserved);
  return j;
}

SoakResult run_soak(const RunSpec& spec, const Model& model,
                    const std::vector<Tensor>& catalog, double duration_s,
                    bool with_faults) {
  // The fault window fails nearly every execution attempt, so the breaker
  // (threshold 3) is guaranteed to open; the cooldown is sized well inside
  // the post-fault third so recovery is observable within the run.
  auto faults = std::make_shared<serve::FaultPlan>(
      serve::FaultPlan::Config{.seed = 5150, .throw_prob = 0.9});
  faults->set_enabled(false);
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 8;
  cfg.queue_capacity = 64;
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.open_cooldown_s = duration_s / 30.0;
  cfg.faults = faults;
  serve::ServingRuntime rt(spec, cfg);
  const serve::ModelHandle h = rt.load(model, catalog[0].h, catalog[0].w);

  // Two closed-loop zipf clients: serve() returns typed results, so the
  // stream keeps flowing straight through the fault window.
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&, t] {
      Rng crng(7700 + static_cast<uint64_t>(t));
      const std::vector<int> seq = serve::zipf_indices(
          crng, 1.1, static_cast<int>(catalog.size()), 1 << 20);
      for (size_t i = 0; !stop.load(std::memory_order_acquire); ++i) {
        const serve::ServeResult res =
            rt.serve(h, catalog[static_cast<size_t>(seq[i % seq.size()])]);
        // A shed (breaker open, injected failure) resolves in microseconds:
        // back off briefly instead of spinning the admission path.
        if (!res.ok()) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }

  // Sample completed-count trajectory in 100 ms buckets; flip the fault
  // window on at T/3 and off at 2T/3.
  const double t0 = now_seconds();
  const double t_fault_on = t0 + duration_s / 3.0;
  const double t_fault_off = t0 + 2.0 * duration_s / 3.0;
  const double t_end = t0 + duration_s;
  std::vector<double> sample_t;
  std::vector<uint64_t> sample_done;
  bool conserved = true;
  double t = t0;
  while (t < t_end) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    t = now_seconds();
    if (with_faults && !faults->enabled() && t >= t_fault_on &&
        t < t_fault_off) {
      faults->set_enabled(true);
    }
    if (faults->enabled() && t >= t_fault_off) faults->set_enabled(false);
    const serve::ServerMetrics m = rt.metrics();
    conserved = conserved && m.conserved();
    sample_t.push_back(t);
    sample_done.push_back(m.completed);
  }
  faults->set_enabled(false);
  stop.store(true, std::memory_order_release);
  for (std::thread& c : clients) c.join();

  const auto rate_between = [&](double from, double until) {
    uint64_t done_a = 0, done_b = 0;
    double ta = t0, tb = t0;
    for (size_t i = 0; i < sample_t.size(); ++i) {
      if (sample_t[i] <= from) { done_a = sample_done[i]; ta = sample_t[i]; }
      if (sample_t[i] <= until) { done_b = sample_done[i]; tb = sample_t[i]; }
    }
    return tb > ta ? static_cast<double>(done_b - done_a) / (tb - ta) : 0.0;
  };

  SoakResult r;
  r.faults_enabled = with_faults;
  r.duration_s = duration_s;
  r.pre_fault_rps = rate_between(t0, t_fault_on);
  r.fault_rps = rate_between(t_fault_on, t_fault_off);
  r.post_fault_rps = rate_between(t_fault_off, t_end);
  if (with_faults) {
    // First bucket after the faults clear that is back at >= 70% of the
    // pre-fault rate.
    r.recovery_s = -1.0;
    for (size_t i = 1; i < sample_t.size(); ++i) {
      if (sample_t[i - 1] < t_fault_off) continue;
      const double rps = static_cast<double>(sample_done[i] - sample_done[i - 1]) /
                         (sample_t[i] - sample_t[i - 1]);
      if (rps >= 0.7 * r.pre_fault_rps) {
        r.recovery_s = sample_t[i] - t_fault_off;
        break;
      }
    }
  }
  const serve::ServerMetrics m = rt.metrics();
  r.submitted = m.submitted;
  r.completed = m.completed;
  r.failed = m.failed;
  r.shed_unhealthy = m.shed_unhealthy;
  for (const serve::ModelHealthSnapshot& s : m.models) {
    r.breaker_opened += s.times_opened;
  }
  r.conserved = conserved && m.conserved() && m.in_flight == 0;
  return r;
}

}  // namespace
}  // namespace mpipu

int main(int argc, char** argv) {
  using namespace mpipu;

  bool smoke = false;
  bool soak = false;
  bool soak_faults = true;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--soak") == 0) {
      soak = true;
    } else if (std::strcmp(argv[i], "--no-soak-faults") == 0) {
      soak_faults = false;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i]
                                                          : "BENCH_server.json";
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json [path]] [--soak] "
                   "[--no-soak-faults]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::title("Serving runtime: dynamic batching + coalescing vs closed loop");

  Rng rng(5150);
  const int c0 = smoke ? 96 : 256;
  const int c1 = smoke ? 96 : 256;
  const int c_out = smoke ? 32 : 64;
  const int kCatalog = smoke ? 4 : 8;
  const int kRequests = smoke ? 48 : 320;
  const double kZipfS = 1.1;

  const Model model = serving_head(rng, c0, c1, c_out);
  std::vector<Tensor> catalog;
  for (int i = 0; i < kCatalog; ++i) {
    catalog.push_back(random_tensor(rng, c0, 1, 1, ValueDist::kHalfNormal, 1.0));
  }
  const std::vector<int> zipf_seq =
      serve::zipf_indices(rng, kZipfS, kCatalog, kRequests);
  std::vector<int> distinct_seq(static_cast<size_t>(kRequests));
  std::vector<Tensor> distinct_catalog;
  for (int i = 0; i < kRequests; ++i) {
    // Distinct stream: every request a different input (nothing to
    // coalesce).  Same geometry, fresh random values.
    distinct_catalog.push_back(
        random_tensor(rng, c0, 1, 1, ValueDist::kHalfNormal, 1.0));
    distinct_seq[static_cast<size_t>(i)] = i;
  }

  RunSpec spec;
  spec.datapath = DatapathConfig::for_scheme(DecompositionScheme::kTemporal);
  spec.datapath.adder_tree_width = 16;
  spec.policy = PrecisionPolicy::all_fp16(AccumKind::kFp32);
  spec.threads = 1;

  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 8;
  cfg.queue_capacity = static_cast<size_t>(kRequests) + 1;  // throughput legs: no shedding

  const CompiledModel compiled = Session(spec).compile(model, {1, 1});

  // --- Byte-identity gate: runtime-served outputs AND per-layer stats must
  // match direct serial execution exactly, coalesced or not. ---------------
  bool bit_identical = true;
  {
    serve::ServingRuntime rt(spec, cfg);
    const serve::ModelHandle h = rt.load(model, 1, 1);
    std::vector<std::future<serve::ServeResult>> futs;
    for (int i = 0; i < kCatalog * 3; ++i) {  // duplicates force coalescing
      futs.push_back(rt.submit(h, catalog[static_cast<size_t>(i % kCatalog)]));
    }
    for (int i = 0; i < kCatalog * 3; ++i) {
      const serve::ServeResult res = futs[static_cast<size_t>(i)].get();
      const RunReport direct =
          compiled.run(catalog[static_cast<size_t>(i % kCatalog)],
                       cfg.run_options);
      if (!res.ok() ||
          !tensors_identical(res.report.output, direct.output) ||
          to_json_value(res.report.totals).dump(0) !=
              to_json_value(direct.totals).dump(0)) {
        bit_identical = false;
      }
    }
  }
  std::printf("byte-identity gate (batched+coalesced vs direct serial): %s\n\n",
              bit_identical ? "yes" : "NO");

  // --- Saturating throughput: closed loop vs batched runtime. -------------
  RunOptions opts = cfg.run_options;
  const LoadResult closed = run_closed_loop(compiled, catalog, zipf_seq, opts);
  const LoadResult batched = run_batched(
      spec, cfg, model, catalog, zipf_seq,
      "batched runtime, zipf(s=" + bench::fmt(kZipfS, 1) + ") stream");
  const LoadResult closed_distinct =
      run_closed_loop(compiled, distinct_catalog, distinct_seq, opts);
  const LoadResult batched_distinct =
      run_batched(spec, cfg, model, distinct_catalog, distinct_seq,
                  "batched runtime, all-distinct stream");
  const double speedup_zipf = batched.throughput_rps / closed.throughput_rps;
  const double speedup_distinct =
      batched_distinct.throughput_rps / closed_distinct.throughput_rps;

  bench::Table table({"path", "req", "done", "req/s", "p50 ms", "p95 ms",
                      "p99 ms", "mean batch", "coalesced"});
  const auto add = [&table](const LoadResult& r) {
    table.add_row({r.label, std::to_string(r.requests),
                   std::to_string(r.completed), bench::fmt(r.throughput_rps, 1),
                   bench::fmt(r.latency.p50_s * 1e3, 2),
                   bench::fmt(r.latency.p95_s * 1e3, 2),
                   bench::fmt(r.latency.p99_s * 1e3, 2),
                   bench::fmt(r.mean_batch, 2),
                   std::to_string(r.coalesced)});
  };
  add(closed);
  add(batched);
  add(closed_distinct);
  add(batched_distinct);
  table.print();
  std::printf("\nsaturating-load throughput, batched/closed: zipf %.2fx "
              "(coalescing collapses hot-key duplicates), all-distinct %.2fx "
              "(nothing to coalesce on one core -- honest ~1.0x)\n",
              speedup_zipf, speedup_distinct);

  // --- Open-loop SLO sweep: Poisson below/at/above capacity + a burst. ----
  const double capacity = closed.throughput_rps;
  std::vector<LoadResult> sweep;
  serve::ServerConfig sweep_cfg = cfg;
  sweep_cfg.queue_capacity = 64;  // bounded: overload sheds instead of piling
  const int sweep_n = smoke ? 32 : 160;
  for (double mult : {0.5, 1.0, 2.0}) {
    Rng arng(9000 + static_cast<uint64_t>(mult * 10));
    const double rate = capacity * mult;
    const std::vector<double> arrivals =
        serve::poisson_arrivals(arng, rate, sweep_n);
    const std::vector<int> seq =
        serve::zipf_indices(arng, kZipfS, kCatalog, sweep_n);
    sweep.push_back(run_batched(
        spec, sweep_cfg, model, catalog, seq,
        "poisson " + bench::fmt(mult, 1) + "x capacity", arrivals));
  }
  {
    Rng arng(9999);
    serve::BurstyConfig bc;
    bc.burst_rate_rps = capacity * 4.0;
    bc.idle_rate_rps = 0.0;
    bc.mean_burst_s = 8.0 / capacity;   // ~8-request bursts
    bc.mean_idle_s = 16.0 / capacity;
    const std::vector<double> arrivals =
        serve::bursty_arrivals(arng, bc, sweep_n);
    const std::vector<int> seq =
        serve::zipf_indices(arng, kZipfS, kCatalog, sweep_n);
    sweep.push_back(run_batched(spec, sweep_cfg, model, catalog, seq,
                                "bursty 4x/idle", arrivals));
  }

  bench::Table slo({"open-loop load", "req", "done", "shed", "p50 ms",
                    "p95 ms", "p99 ms", "mean batch", "queue hw"});
  for (const LoadResult& r : sweep) {
    slo.add_row({r.label, std::to_string(r.requests),
                 std::to_string(r.completed), std::to_string(r.shed),
                 bench::fmt(r.latency.p50_s * 1e3, 2),
                 bench::fmt(r.latency.p95_s * 1e3, 2),
                 bench::fmt(r.latency.p99_s * 1e3, 2),
                 bench::fmt(r.mean_batch, 2),
                 std::to_string(r.queue_high_water)});
  }
  std::printf("\n");
  slo.print();

  std::printf("\nheadline: %.2fx throughput at saturating load on the zipf "
              "hot-key stream, byte-identical to serial execution\n",
              speedup_zipf);

  // --- Optional soak: fixed-duration stream with a mid-run fault window. --
  SoakResult soak_r;
  if (soak) {
    const double soak_s = smoke ? 1.5 : 6.0;
    std::printf("\nsoak: %.1f s zipf stream, fault window %s\n", soak_s,
                soak_faults ? "in the middle third (throw=0.9)" : "DISABLED");
    soak_r = run_soak(spec, model, catalog, soak_s, soak_faults);
    std::printf("  pre-fault %.1f req/s | fault window %.1f req/s | "
                "post-fault %.1f req/s\n",
                soak_r.pre_fault_rps, soak_r.fault_rps, soak_r.post_fault_rps);
    if (soak_faults) {
      std::printf("  %llu injected failures, breaker opened %llu time(s), "
                  "recovery to 70%% of pre-fault rate in %.2f s\n",
                  static_cast<unsigned long long>(soak_r.failed),
                  static_cast<unsigned long long>(soak_r.breaker_opened),
                  soak_r.recovery_s);
    }
    std::printf("  metrics conserved across every sampled snapshot: %s\n",
                soak_r.conserved ? "yes" : "NO");
  }

  Json root = Json::object();
  root.set("bench", "server");
  root.set("smoke", smoke);
  Json workload = Json::object();
  workload.set("model", std::to_string(c0) + "->" + std::to_string(c1) + "->" +
                            std::to_string(c1) + "->" + std::to_string(c_out) +
                            " fc head (1x1 convs)");
  workload.set("catalog_inputs", kCatalog);
  workload.set("requests", kRequests);
  workload.set("zipf_s", kZipfS);
  workload.set("max_batch", cfg.max_batch);
  workload.set("workers", cfg.workers);
  root.set("workload", std::move(workload));
  root.set("kernel_backend", simd::backend_name());
  Json sat = Json::object();
  sat.set("closed_loop_zipf", to_json(closed));
  sat.set("batched_zipf", to_json(batched));
  sat.set("closed_loop_distinct", to_json(closed_distinct));
  sat.set("batched_distinct", to_json(batched_distinct));
  sat.set("speedup_batched_vs_closed_zipf", speedup_zipf);
  sat.set("speedup_batched_vs_closed_distinct", speedup_distinct);
  root.set("saturating", std::move(sat));
  Json sweep_j = Json::array();
  for (const LoadResult& r : sweep) sweep_j.push(to_json(r));
  root.set("open_loop_sweep", std::move(sweep_j));
  root.set("speedup_batched_vs_closed", speedup_zipf);
  root.set("bit_identical", bit_identical);
  if (soak) root.set("soak", to_json(soak_r));

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << root.dump() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  // The soak's conservation audit is a correctness gate just like
  // byte-identity: a non-balancing ledger fails the bench.
  return (bit_identical && (!soak || soak_r.conserved)) ? 0 : 1;
}
