// Ablation studies for the design choices DESIGN.md calls out:
//   A1  EHU serve loop: literal threshold sweep (Fig. 5) vs occupied-band
//       skipping -- cycle cost of empty alignment bands.
//   A2  Accumulator fraction width: the paper provisions 30 bits; sweep it
//       and measure when accuracy degrades.
//   A3  Rounding model: single-rounding IPU vs conventional FMA chain vs
//       exact -- the error-model argument for IP-based datapaths.
//   A4  Sparse zero-skipping (future-work extension): cycles saved vs
//       activation sparsity, values unchanged.
//   A5  Software-precision masking: accuracy/cycles trade-off of the EHU
//       stage-4 threshold.
#include <cstdio>
#include <vector>

#include "analysis/error_metrics.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/ipu.h"
#include "core/reference.h"
#include "softfloat/arith.h"
#include "workload/distributions.h"

namespace mpipu {
namespace {

std::vector<Fp16> draw(Rng& rng, ValueDist d, double scale, int n) {
  return sample_fp16(rng, d, scale, n);
}

void ablation_ehu_serve_loop() {
  bench::section("A1: EHU serve loop -- threshold sweep vs occupied-band skip");
  bench::Table t({"w (sp)", "avg cycles/iter (sweep)", "avg cycles/iter (skip-empty)",
                  "saving"});
  Rng rng(901);
  for (int w : {12, 14, 16, 20}) {
    IpuConfig sweep_cfg;
    sweep_cfg.n_inputs = 16;
    sweep_cfg.adder_tree_width = w;
    sweep_cfg.software_precision = 28;
    sweep_cfg.multi_cycle = true;
    IpuConfig skip_cfg = sweep_cfg;
    skip_cfg.skip_empty_bands = true;
    Ipu sweep_ipu(sweep_cfg), skip_ipu(skip_cfg);
    for (int trial = 0; trial < 2000; ++trial) {
      const auto a = draw(rng, ValueDist::kLaplace, 1.0, 16);
      const auto b = draw(rng, ValueDist::kNormal, 0.05, 16);
      sweep_ipu.reset_accumulator();
      skip_ipu.reset_accumulator();
      sweep_ipu.fp_accumulate<kFp16Format>(a, b);
      skip_ipu.fp_accumulate<kFp16Format>(a, b);
    }
    const double cs = static_cast<double>(sweep_ipu.stats().cycles) /
                      static_cast<double>(sweep_ipu.stats().nibble_iterations);
    const double ck = static_cast<double>(skip_ipu.stats().cycles) /
                      static_cast<double>(skip_ipu.stats().nibble_iterations);
    t.add_row({std::to_string(w) + " (" + std::to_string(w - 9) + ")", bench::fmt(cs, 2),
               bench::fmt(ck, 2), bench::fmt_pct(1.0 - ck / cs)});
  }
  t.print();
}

void ablation_accumulator_width() {
  bench::section("A2: accumulator fraction bits (paper provisions 30)");
  bench::Table t({"frac bits", "median ARE % (FP32 out)", "p99 ARE %"});
  Rng rng(902);
  for (int frac : {16, 20, 24, 28, 30, 34, 40}) {
    IpuConfig cfg;
    cfg.n_inputs = 16;
    cfg.adder_tree_width = 28;
    cfg.software_precision = 28;
    cfg.multi_cycle = false;
    cfg.accumulator.frac_bits = frac;
    Ipu ipu(cfg);
    std::vector<double> ares;
    for (int trial = 0; trial < 3000; ++trial) {
      const auto a = draw(rng, ValueDist::kLaplace, 1.0, 16);
      const auto b = draw(rng, ValueDist::kLaplace, 1.0, 16);
      ipu.reset_accumulator();
      ipu.fp_accumulate<kFp16Format>(a, b);
      const auto got = Fp32::round_from_fixed(ipu.read_raw());
      const auto want = exact_fp_inner_product_rounded<kFp16Format, kFp32Format>(a, b);
      ares.push_back(absolute_relative_error_pct(got.to_fixed(), want.to_fixed()));
    }
    t.add_row({std::to_string(frac), bench::fmt_sci(median(ares)),
               bench::fmt_sci(percentile(ares, 99.0))});
  }
  t.print();
  std::printf("-> 30 fraction bits are enough; narrower accumulators start losing\n"
              "   FP32-level accuracy, wider ones buy nothing.\n");
}

void ablation_rounding_model() {
  bench::section("A3: rounding model -- IPU(28) single rounding vs FMA chain vs exact");
  bench::Table t({"n", "IPU(28) mean |err|", "FMA-chain mean |err|", "chain/IPU"});
  Rng rng(903);
  for (int n : {8, 16, 64, 256}) {
    IpuConfig cfg;
    cfg.n_inputs = n;
    cfg.adder_tree_width = 28;
    cfg.software_precision = 28;
    cfg.multi_cycle = false;
    Ipu ipu(cfg);
    double ipu_err = 0.0, chain_err = 0.0;
    const int trials = 2000;
    for (int trial = 0; trial < trials; ++trial) {
      const auto a = draw(rng, ValueDist::kNormal, 1.0, n);
      const auto b = draw(rng, ValueDist::kNormal, 1.0, n);
      ipu.reset_accumulator();
      ipu.fp_accumulate<kFp16Format>(a, b);
      const FixedPoint exact = exact_fp_inner_product<kFp16Format>(a, b);
      ipu_err += absolute_error(Fp32::round_from_fixed(ipu.read_raw()).to_fixed(), exact);
      const Fp32 chain = fma_chain_inner_product<kFp16Format, kFp32Format>(a, b);
      chain_err += absolute_error(chain.to_fixed(), exact);
    }
    t.add_row({std::to_string(n), bench::fmt_sci(ipu_err / trials),
               bench::fmt_sci(chain_err / trials),
               bench::fmt(chain_err / std::max(ipu_err, 1e-300), 1) + "x"});
  }
  t.print();
  std::printf("-> the FMA chain's per-element rounding drift grows with n; the\n"
              "   IPU's one-shot alignment keeps the error at the final-rounding\n"
              "   level -- an accuracy argument for IP-based datapaths.\n");
}

void ablation_sparsity() {
  bench::section("A4: dynamic zero-skipping (sparse extension)");
  bench::Table t({"activation sparsity", "cycles vs dense datapath", "skipped iters"});
  Rng rng(904);
  for (double s : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    IpuConfig cfg;
    cfg.n_inputs = 16;
    cfg.adder_tree_width = 16;
    cfg.software_precision = 28;
    cfg.multi_cycle = true;
    cfg.skip_zero_iterations = true;
    IpuConfig dense_cfg = cfg;
    dense_cfg.skip_zero_iterations = false;
    Ipu ipu(cfg), dense(dense_cfg);
    for (int trial = 0; trial < 2000; ++trial) {
      std::vector<Fp16> a, b;
      for (int k = 0; k < 16; ++k) {
        a.push_back(Fp16::from_double(rng.bernoulli(s) ? 0.0 : rng.normal(0.0, 1.0)));
        b.push_back(Fp16::from_double(rng.normal(0.0, 0.05)));
      }
      ipu.reset_accumulator();
      dense.reset_accumulator();
      ipu.fp_accumulate<kFp16Format>(a, b);
      dense.fp_accumulate<kFp16Format>(a, b);
    }
    t.add_row({bench::fmt_pct(s, 0),
               bench::fmt(static_cast<double>(ipu.stats().cycles) /
                              static_cast<double>(dense.stats().cycles),
                          3),
               bench::fmt_pct(static_cast<double>(ipu.stats().skipped_iterations) /
                              static_cast<double>(ipu.stats().nibble_iterations))});
  }
  t.print();
}

void ablation_masking() {
  bench::section("A5: EHU software-precision masking threshold");
  bench::Table t({"software precision", "median ARE % (FP32 out)", "avg cycles/iter",
                  "masked products"});
  Rng rng(905);
  for (int P : {8, 12, 16, 20, 24, 28, 40}) {
    IpuConfig cfg;
    cfg.n_inputs = 16;
    cfg.adder_tree_width = 12;
    cfg.software_precision = P;
    cfg.multi_cycle = true;
    Ipu ipu(cfg);
    std::vector<double> ares;
    for (int trial = 0; trial < 2000; ++trial) {
      const auto a = draw(rng, ValueDist::kLaplace, 1.0, 16);
      const auto b = draw(rng, ValueDist::kLaplace, 1.0, 16);
      ipu.reset_accumulator();
      ipu.fp_accumulate<kFp16Format>(a, b);
      const auto got = Fp32::round_from_fixed(ipu.read_raw());
      const auto want = exact_fp_inner_product_rounded<kFp16Format, kFp32Format>(a, b);
      ares.push_back(absolute_relative_error_pct(got.to_fixed(), want.to_fixed()));
    }
    t.add_row({std::to_string(P), bench::fmt_sci(median(ares)),
               bench::fmt(static_cast<double>(ipu.stats().cycles) /
                              static_cast<double>(ipu.stats().nibble_iterations),
                          2),
               bench::fmt_pct(static_cast<double>(ipu.stats().masked_products) /
                              (static_cast<double>(ipu.stats().fp_ops) * 16))});
  }
  t.print();
  std::printf("-> masking beyond ~28 bits buys no accuracy but costs alignment\n"
              "   cycles; below ~16 it visibly hurts FP32-destination accuracy.\n");
}

}  // namespace
}  // namespace mpipu

int main() {
  using namespace mpipu;
  bench::title("Ablation studies (design knobs of the MC-IPU architecture)");
  ablation_ehu_serve_loop();
  ablation_accumulator_width();
  ablation_rounding_model();
  ablation_sparsity();
  ablation_masking();
  return 0;
}
