// Figure 10 reproduction: area- and power-efficiency design space of
// (adder-tree precision p, cluster size c) points for 8- and 16-input tiles,
// in INT mode (TOPS/mm^2, TOPS/W at 4x4) and FP mode (effective TFLOPS/mm^2,
// TFLOPS/W with the simulator's average FP slowdown over the forward study
// cases).  NO-OPT is the 38b Baseline2.
//
// §4.4 headline claims: the (12,1) and (16,1) points gain up to 25%
// TFLOPS/mm^2 and up to 46% TOPS/mm^2, with up to 40-63% (TFLOPS/W) and
// 63-74% (TOPS/W) power-efficiency improvements over NO-OPT.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "model/hw_model.h"
#include "sim/cycle_sim.h"

namespace mpipu {
namespace {

/// Average FP16 execution-time inflation (>= 1) of a tile vs its 38b
/// same-geometry baseline over the forward study cases.
double fp_slowdown(const TileConfig& tile, bool big, const SimOptions& opts) {
  const TileConfig base = big ? baseline2() : baseline1();
  double total = 0.0;
  int count = 0;
  for (const auto& net : paper_study_cases()) {
    if (net.name == "resnet18-bwd") continue;
    const auto r = simulate_network(net, tile, opts);
    const auto b = simulate_network(net, base, opts);
    total += r.normalized_to(b);
    ++count;
  }
  return total / count;
}

struct Point {
  int w, cluster;
  double tops_mm2, tops_w, tflops_mm2, tflops_w;
};

}  // namespace
}  // namespace mpipu

int main() {
  using namespace mpipu;
  bench::title("Figure 10: design-space trade-offs (p = adder precision, c = cluster size)");
  SimOptions opts;
  opts.sampled_steps = 400;

  for (bool big : {false, true}) {
    bench::section(big ? "16-input MC-IPUs" : "8-input MC-IPUs");
    std::vector<Point> points;
    DesignConfig noopt = big ? nvdla_like_design() : proposed_design(38, 32, false);
    noopt.tile.datapath.multi_cycle = false;

    bench::Table t({"(p,c)", "TOPS/mm2 (INT4)", "TOPS/W (INT4)", "TFLOPS/mm2 (eff)",
                    "TFLOPS/W (eff)"});
    auto add_design = [&](const std::string& label, const DesignConfig& d,
                          double slowdown) {
      Point pt;
      pt.tops_mm2 = tops_per_mm2(d, 4, 4);
      pt.tops_w = tops_per_w(d, 4, 4);
      pt.tflops_mm2 = tflops_per_mm2(d, slowdown);
      pt.tflops_w = tflops_per_w(d, slowdown);
      t.add_row({label, bench::fmt(pt.tops_mm2, 1), bench::fmt(pt.tops_w, 2),
                 bench::fmt(pt.tflops_mm2, 2), bench::fmt(pt.tflops_w, 3)});
      points.push_back(pt);
    };

    add_design("NO-OPT (38b)", noopt, 1.0);
    for (int w : {12, 16, 20, 24, 28}) {
      for (int cluster : {1, 4, big ? 64 : 32}) {
        DesignConfig d = proposed_design(w, cluster, big);
        const double slowdown = fp_slowdown(d.tile, big, opts);
        add_design("(" + std::to_string(w) + "," + std::to_string(cluster) + ")", d,
                   slowdown);
      }
    }
    t.print();
  }

  bench::section("Section 4.4 headline claims (vs NO-OPT Baseline2, 16-input)");
  {
    DesignConfig noopt = nvdla_like_design();
    const double base_tops_mm2 = tops_per_mm2(noopt, 4, 4);
    const double base_tops_w = tops_per_w(noopt, 4, 4);
    const double base_tflops_mm2 = tflops_per_mm2(noopt, 1.0);
    const double base_tflops_w = tflops_per_w(noopt, 1.0);
    for (int w : {12, 16}) {
      DesignConfig d = proposed_design(w, 1, true);
      const double slowdown = fp_slowdown(d.tile, true, opts);
      std::printf("(%d,1): TFLOPS/mm2 %+5.1f%% (paper: up to +25%%) | TOPS/mm2 %+5.1f%% "
                  "(paper: up to +46%%) | TFLOPS/W %+5.1f%% (paper: up to +40/63%%) | "
                  "TOPS/W %+5.1f%% (paper: up to +63/74%%)\n",
                  w, 100.0 * (tflops_per_mm2(d, slowdown) / base_tflops_mm2 - 1.0),
                  100.0 * (tops_per_mm2(d, 4, 4) / base_tops_mm2 - 1.0),
                  100.0 * (tflops_per_w(d, slowdown) / base_tflops_w - 1.0),
                  100.0 * (tops_per_w(d, 4, 4) / base_tops_w - 1.0));
    }
  }
  return 0;
}
