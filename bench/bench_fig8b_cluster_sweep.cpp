// Figure 8(b) reproduction: normalized execution time of MC-IPU(16) tiles as
// a function of cluster size (MC-IPUs per cluster), FP32 accumulation.
// 8-input tiles normalize to Baseline1, 16-input to Baseline2.
//
// Expected shape (paper): small clusters recover most of the multi-cycling
// loss for forward workloads; 16-input tiles retain >= 12% loss even at
// cluster size 1; the backward workload keeps >= 60% overhead at cluster 1.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/cycle_sim.h"

int main() {
  using namespace mpipu;
  bench::title("Figure 8(b): normalized execution time vs cluster size, MC-IPU(16)");
  SimOptions opts;
  opts.sampled_steps = 600;

  const auto nets = paper_study_cases();
  for (bool big : {false, true}) {
    const TileConfig base = big ? baseline2() : baseline1();
    std::vector<NetworkSimResult> base_runs;
    for (const auto& net : nets) base_runs.push_back(simulate_network(net, base, opts));

    bench::section(big ? "16-input MC-IPU(16) (vs Baseline2)"
                       : "8-input MC-IPU(16) (vs Baseline1)");
    bench::Table t({"cluster size", "resnet18-fwd", "resnet50-fwd", "inceptionv3-fwd",
                    "resnet18-bwd (backward)"});
    const int max_cluster = big ? 64 : 32;
    for (int cluster : {1, 2, 4, 8, 16, 32, 64}) {
      if (cluster > max_cluster) continue;
      std::vector<std::string> row = {std::to_string(cluster)};
      for (size_t i = 0; i < nets.size(); ++i) {
        const TileConfig tile =
            big ? big_tile(16, 28, cluster) : small_tile(16, 28, cluster);
        const auto r = simulate_network(nets[i], tile, opts);
        row.push_back(bench::fmt(r.normalized_to(base_runs[i]), 2) + "x");
      }
      t.add_row(std::move(row));
    }
    t.print();
  }

  bench::section("Claim checks");
  {
    SimOptions o2 = opts;
    const auto rn18f = resnet18_forward();
    const auto rn18b = resnet18_backward();
    const auto b2 = simulate_network(rn18f, baseline2(), o2);
    const auto big1 = simulate_network(rn18f, big_tile(16, 28, 1), o2);
    std::printf("16-input, cluster 1, rn18-fwd: %.0f%% loss (paper: >= 12%%)\n",
                100.0 * (big1.normalized_to(b2) - 1.0));
    const auto b2b = simulate_network(rn18b, baseline2(), o2);
    const auto big1b = simulate_network(rn18b, big_tile(16, 28, 1), o2);
    std::printf("16-input, cluster 1, rn18-bwd: %.0f%% overhead (paper: >= 60%%)\n",
                100.0 * (big1b.normalized_to(b2b) - 1.0));
  }
  return 0;
}
