// Figure 9 reproduction: distribution of exponent differences (alignment
// sizes, max_exp - exp) of ResNet-18 forward vs backward computations on
// 8-input IPUs.
//
// Expected shape (paper): forward alignments cluster around zero with only
// ~1% larger than eight; backward alignments are much more spread out.
#include <cstdio>

#include "bench_util.h"
#include "sim/cycle_sim.h"

int main() {
  using namespace mpipu;
  bench::title("Figure 9: exponent-difference (alignment) histograms, ResNet-18");

  const auto fwd = alignment_histogram(resnet18_forward(), 8, 20000);
  const auto bwd = alignment_histogram(resnet18_backward(), 8, 20000);

  bench::Table t({"alignment", "forward fraction", "backward fraction"});
  for (int d = 0; d <= 24; ++d) {
    t.add_row({std::to_string(d), bench::fmt(fwd.fraction(d), 4), bench::fmt(bwd.fraction(d), 4)});
  }
  t.add_row({">24", bench::fmt(fwd.fraction_above(24), 4), bench::fmt(bwd.fraction_above(24), 4)});
  t.print();

  bench::section("Claim checks");
  std::printf("forward alignments  > 8: %5.2f%%  (paper: ~1%%)\n",
              100.0 * fwd.fraction_above(8));
  std::printf("backward alignments > 8: %5.2f%%  (paper: much larger than forward)\n",
              100.0 * bwd.fraction_above(8));
  std::printf("forward alignments <= 4: %5.1f%%  (clustered near zero)\n",
              100.0 * (1.0 - fwd.fraction_above(4)));
  return 0;
}
