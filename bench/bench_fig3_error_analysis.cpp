// Figure 3 reproduction: median absolute error, absolute relative error and
// contaminated bits of the approximate FP-IP, as a function of IPU precision,
// for Laplace / Normal / Uniform synthetic tensors and ResNet-like tensor
// statistics, with FP16 (top row) and FP32 (bottom row) accumulators.
//
// Paper claims to check (§3.1):
//  * FP16 accumulation: errors < 1e-6 and median contaminated bits 0 at
//    16-bit IPU precision  -> ">= 16b suffices for FP16 accumulation".
//  * FP32 accumulation: errors < 1e-5 at >= 26b; contaminated-bit median
//    bottoms out at 27b   -> ">= 27b suffices for FP32 accumulation".
#include <cstdio>
#include <vector>

#include "analysis/error_metrics.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/ipu.h"
#include "core/reference.h"
#include "workload/distributions.h"

namespace mpipu {
namespace {

struct DistCase {
  const char* name;
  ValueDist dist;
  double scale;
};

// ResNet-like cases substitute the paper's sampled ImageNet tensors with the
// distribution families the paper itself says DNN tensors follow (DESIGN.md).
const DistCase kCases[] = {
    {"laplace", ValueDist::kLaplace, 1.0},
    {"normal", ValueDist::kNormal, 1.0},
    {"uniform", ValueDist::kUniform, 1.0},
    {"resnet18-like", ValueDist::kHalfNormal, 1.0},
    {"resnet50-like", ValueDist::kLaplace, 0.5},
};

struct PointResult {
  double med_abs_err;
  double med_are_pct;
  double med_contaminated;
  double mean_contaminated;
};

template <FpFormat AccF>
PointResult run_point(const DistCase& c, int precision, int n, int samples,
                      uint64_t seed) {
  Rng rng(seed);
  IpuConfig cfg;
  cfg.n_inputs = n;
  cfg.adder_tree_width = precision;
  cfg.software_precision = precision;
  cfg.multi_cycle = false;

  Ipu ipu(cfg);
  std::vector<double> abs_errs, ares, contams;
  abs_errs.reserve(static_cast<size_t>(samples));
  for (int s = 0; s < samples; ++s) {
    std::vector<Fp16> a = sample_fp16(rng, c.dist, c.scale, n);
    std::vector<Fp16> b = sample_fp16(rng, c.dist, c.scale, n);
    ipu.reset_accumulator();
    ipu.fp_accumulate<kFp16Format>(a, b);
    const FixedPoint exact = exact_fp_inner_product<kFp16Format>(a, b);
    const auto approx_rounded = Soft<AccF>::round_from_fixed(ipu.read_raw());
    const auto exact_rounded = Soft<AccF>::round_from_fixed(exact);
    abs_errs.push_back(absolute_error(approx_rounded.to_fixed(), exact_rounded.to_fixed()));
    ares.push_back(
        absolute_relative_error_pct(approx_rounded.to_fixed(), exact_rounded.to_fixed()));
    contams.push_back(static_cast<double>(
        contaminated_bits(approx_rounded.raw_bits(), exact_rounded.raw_bits(), AccF)));
  }
  PointResult r;
  r.med_abs_err = median(abs_errs);
  r.med_are_pct = median(ares);
  r.med_contaminated = median(contams);
  r.mean_contaminated = mean(contams);
  return r;
}

template <FpFormat AccF>
void run_accumulator_row(const char* acc_name, const std::vector<int>& precisions,
                         int n, int samples) {
  bench::section(std::string("Accumulator: ") + acc_name + "  (n=" + std::to_string(n) +
                 " inputs per FP-IP, " + std::to_string(samples) + " samples/point)");
  for (const auto& c : kCases) {
    bench::Table t({"precision", "median |err|", "median ARE %", "median contam. bits",
                    "mean contam. bits"});
    for (int p : precisions) {
      const PointResult r =
          run_point<AccF>(c, p, n, samples, 0x31337 + static_cast<uint64_t>(p));
      t.add_row({std::to_string(p), bench::fmt_sci(r.med_abs_err),
                 bench::fmt_sci(r.med_are_pct), bench::fmt(r.med_contaminated, 1),
                 bench::fmt(r.mean_contaminated, 2)});
    }
    std::printf("\n[%s]\n", c.name);
    t.print();
  }
}

}  // namespace
}  // namespace mpipu

int main() {
  using namespace mpipu;
  bench::title(
      "Figure 3: approximate FP-IP error vs IPU precision "
      "(abs error | % ARE | contaminated bits)");

  const std::vector<int> precisions = {8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 27, 28, 30};
  const int n = 16;
  const int samples = 4000;

  run_accumulator_row<kFp16Format>("FP16", precisions, n, samples);
  run_accumulator_row<kFp32Format>("FP32", precisions, n, samples);

  // Paper-claim check lines (§3.1).
  bench::section("Claim checks");
  const auto fp16_at16 = run_point<kFp16Format>(kCases[0], 16, n, samples, 0xA);
  const auto fp32_at26 = run_point<kFp32Format>(kCases[0], 26, n, samples, 0xB);
  const auto fp32_at27 = run_point<kFp32Format>(kCases[0], 27, n, samples, 0xC);
  std::printf("FP16 acc @ precision 16: median ARE = %.2e%% (paper: < 1e-6), "
              "median contaminated bits = %.1f (paper: 0)\n",
              fp16_at16.med_are_pct, fp16_at16.med_contaminated);
  std::printf("FP32 acc @ precision 26: median ARE = %.2e%% (paper: < 1e-5)\n",
              fp32_at26.med_are_pct);
  std::printf("FP32 acc @ precision 27: median contaminated bits = %.1f (paper: 0)\n",
              fp32_at27.med_contaminated);
  return 0;
}
