// Serving throughput: compile-once / run-many vs recompile-every-run.
//
// The paper's deployment scenario is fixed-weight inference behind a
// request stream.  This bench measures what the compile/run split
// (api/compiled_model.h) buys there:
//
//   * recompile-every-run baseline -- what a naive server does per request:
//     a fresh Session::run pays the whole weight pipeline (FP16 rounding /
//     INT quantization, decode, nibble decomposition, per-clip-class stream
//     packing) every single time;
//   * compiled -- one Session::compile at load time, then
//     CompiledModel::run per request: the weight pipeline is amortized to
//     zero and each request pays only activation prep + the datapath;
//   * concurrent serving -- N host threads hammering the one CompiledModel
//     (reentrant: per-call scratch, shared const plans), reporting
//     aggregate requests/sec and per-request latency.
//
// The workload is an FC-style head (1x1 spatial, 1x1 kernels): the serving
// shape where weights dominate -- every filter element is streamed exactly
// once per request, so the weight pipeline is a maximal honest fraction of
// a request.  Outputs are verified bit-identical between the two paths
// before anything is timed.
//
//   ./bench_serving [--smoke] [--graph] [--json [path]]
//
// --smoke shrinks the workload for CI; --json writes BENCH_serving.json
// (or the given path) through the repo's single JSON emitter.  A graph
// section (one ResNet-18 residual block, layer4-shaped channels at reduced
// spatial size, served compile-once/run-many) always runs so the JSON
// tracks graph-path throughput; --graph runs ONLY that section for quick
// iteration on the branchy executor.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/json.h"
#include "api/session.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/simd/simd.h"
#include "workload/graph_builders.h"

namespace mpipu {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

using bench::tensors_identical;

/// FC-style serving head: chained 1x1 convs on a 1x1 map (per-request
/// activations are tiny, weights are everything -- the shape a classifier
/// head or recommender tower serves at).
Model serving_head(Rng& rng, int c0, int c1, int c_out) {
  std::vector<ModelLayer> layers(3);
  layers[0].name = "fc1";
  layers[0].filters = random_filters(rng, c1, c0, 1, 1, ValueDist::kNormal, 0.15);
  layers[0].relu = true;
  layers[1].name = "fc2";
  layers[1].filters = random_filters(rng, c1, c1, 1, 1, ValueDist::kNormal, 0.1);
  layers[1].relu = true;
  layers[2].name = "logits";
  layers[2].filters = random_filters(rng, c_out, c1, 1, 1, ValueDist::kNormal, 0.1);
  return Model::from_layers("serving-head", std::move(layers));
}

struct SectionResult {
  double recompile_s_per_req = 0.0;
  double compiled_s_per_req = 0.0;
  double speedup = 0.0;
  bool bit_identical = true;
};

/// Single-thread requests/sec: the recompile-every-run baseline vs one
/// CompiledModel, over the same request stream.  Templated so chain Models
/// and GraphModels (the branchy ResNet-block section) share one harness.
template <typename ModelT>
SectionResult run_section(const ModelT& model, const RunSpec& spec,
                          const std::vector<Tensor>& inputs, int requests) {
  RunOptions opts;
  opts.compare_reference = false;  // serving path: no FP32 shadow chain

  SectionResult r;
  const CompiledModel compiled =
      Session(spec).compile(model, {inputs[0].h, inputs[0].w});

  // Bit-identity gate before timing: one fresh-Session run (the baseline
  // path) must agree with the compiled path on every distinct input.
  for (const Tensor& in : inputs) {
    Session fresh(spec);
    if (!tensors_identical(fresh.run(model, in, opts).output,
                           compiled.run(in, opts).output)) {
      r.bit_identical = false;
      return r;
    }
  }

  double t0 = now_seconds();
  for (int q = 0; q < requests; ++q) {
    Session fresh(spec);  // a naive server: load + prepare weights per request
    const RunReport rep =
        fresh.run(model, inputs[static_cast<size_t>(q) % inputs.size()], opts);
    (void)rep;
  }
  r.recompile_s_per_req = (now_seconds() - t0) / requests;

  t0 = now_seconds();
  for (int q = 0; q < requests; ++q) {
    const RunReport rep =
        compiled.run(inputs[static_cast<size_t>(q) % inputs.size()], opts);
    (void)rep;
  }
  r.compiled_s_per_req = (now_seconds() - t0) / requests;
  r.speedup = r.recompile_s_per_req / r.compiled_s_per_req;
  return r;
}

struct ConcurrentResult {
  int threads = 0;
  int requests = 0;
  double total_seconds = 0.0;
  double requests_per_sec = 0.0;
  bench::LatencySummary latency;
  bool bit_identical = true;
};

/// N host threads against ONE CompiledModel; per-request latencies sampled
/// on every thread, outputs verified against the serial ground truth.
ConcurrentResult run_concurrent(const CompiledModel& compiled,
                                const std::vector<Tensor>& inputs,
                                int threads, int requests_per_thread) {
  RunOptions opts;
  opts.compare_reference = false;

  std::vector<Tensor> expected;
  for (const Tensor& in : inputs) expected.push_back(compiled.run(in, opts).output);

  ConcurrentResult r;
  r.threads = threads;
  r.requests = threads * requests_per_thread;
  std::vector<std::vector<double>> latencies(static_cast<size_t>(threads));
  std::vector<char> ok(static_cast<size_t>(threads), 1);

  const double t0 = now_seconds();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int q = 0; q < requests_per_thread; ++q) {
        const size_t i = static_cast<size_t>(t + q) % inputs.size();
        const double s = now_seconds();
        const RunReport rep = compiled.run(inputs[i], opts);
        latencies[static_cast<size_t>(t)].push_back(now_seconds() - s);
        if (!tensors_identical(rep.output, expected[i])) {
          ok[static_cast<size_t>(t)] = 0;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  r.total_seconds = now_seconds() - t0;
  r.requests_per_sec = r.requests / r.total_seconds;

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  r.latency = bench::summarize_latencies(std::move(all));
  for (char o : ok) r.bit_identical = r.bit_identical && o != 0;
  return r;
}

}  // namespace
}  // namespace mpipu

int main(int argc, char** argv) {
  using namespace mpipu;

  bool smoke = false;
  bool graph_only = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--graph") == 0) {
      graph_only = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i]
                                                          : "BENCH_serving.json";
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--graph] [--json [path]]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::title("Serving: compile-once CompiledModel vs recompile-every-run");

  Rng rng(1234);
  const int c0 = smoke ? 96 : 384;
  const int c1 = smoke ? 96 : 384;
  const int c_out = smoke ? 32 : 128;
  const int requests = smoke ? 4 : 12;
  const Model model = serving_head(rng, c0, c1, c_out);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 3; ++i) {
    inputs.push_back(random_tensor(rng, c0, 1, 1, ValueDist::kHalfNormal, 1.0));
  }

  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  std::printf("workload: %d -> %d -> %d -> %d FC head (1x1 convs), %d requests "
              "per path; hardware_concurrency = %d%s\n\n",
              c0, c1, c1, c_out, requests, hw, smoke ? "; --smoke" : "");

  RunSpec fp16_spec;
  fp16_spec.datapath = DatapathConfig::for_scheme(DecompositionScheme::kTemporal);
  fp16_spec.datapath.adder_tree_width = 16;
  fp16_spec.policy = PrecisionPolicy::all_fp16(AccumKind::kFp32);
  fp16_spec.threads = 1;

  RunSpec int8_spec = fp16_spec;
  int8_spec.policy = PrecisionPolicy::all_int(8);

  // Graph section: one ResNet-18 residual block (basic block, identity
  // skip) with layer4-shaped channels at reduced spatial size, served
  // compile-once/run-many through the branchy executor.
  const int gc = smoke ? 16 : 64;
  const int gdim = smoke ? 6 : 8;
  const int grequests = smoke ? 2 : 4;
  GraphModel gblock = resnet_basic_block_graph(gc, gc, 1, "resnet18-stage");
  gblock.materialize_weights(77);
  std::vector<Tensor> ginputs;
  for (int i = 0; i < 3; ++i) {
    ginputs.push_back(
        random_tensor(rng, gc, gdim, gdim, ValueDist::kHalfNormal, 1.0));
  }
  const SectionResult graph =
      run_section(gblock, fp16_spec, ginputs, grequests);

  SectionResult fp16, int8;
  ConcurrentResult conc;
  if (!graph_only) {
    fp16 = run_section(model, fp16_spec, inputs, requests);
    int8 = run_section(model, int8_spec, inputs, requests);
    // Concurrent serving against the FP16 plan.
    const CompiledModel compiled = Session(fp16_spec).compile(model, {1, 1});
    const int conc_threads = std::max(4, hw);
    conc = run_concurrent(compiled, inputs, conc_threads,
                          std::max(2, requests / 2));
  }

  bench::Table table({"mode", "recompile s/req", "compiled s/req",
                      "speedup", "bit-identical"});
  const auto add = [&table](const char* mode, const SectionResult& s) {
    table.add_row({mode, bench::fmt(s.recompile_s_per_req, 4),
                   bench::fmt(s.compiled_s_per_req, 4),
                   bench::fmt(s.speedup, 2) + "x", s.bit_identical ? "yes" : "NO"});
  };
  if (!graph_only) {
    add("fp16+fp32acc", fp16);
    add("int8x8", int8);
  }
  add("graph fp16 (resnet18 stage)", graph);
  table.print();

  if (!graph_only) {
    std::printf("\nconcurrent serving (one CompiledModel, %d host threads, %d "
                "requests): %.1f req/s, latency mean %.4f s, p50 %.4f s, "
                "p95 %.4f s, p99 %.4f s, bit-identical vs serial: %s\n",
                conc.threads, conc.requests, conc.requests_per_sec,
                conc.latency.mean_s, conc.latency.p50_s, conc.latency.p95_s,
                conc.latency.p99_s, conc.bit_identical ? "yes" : "NO");
  }

  const bool all_identical = graph.bit_identical &&
                             (graph_only || (fp16.bit_identical &&
                                             int8.bit_identical &&
                                             conc.bit_identical));
  const double headline =
      graph_only ? graph.speedup : std::max(fp16.speedup, int8.speedup);
  std::printf("headline: %.2fx single-thread requests/sec, weight pipeline "
              "amortized to zero\n",
              headline);

  Json root = Json::object();
  root.set("bench", "serving");
  root.set("smoke", smoke);
  root.set("graph_only", graph_only);
  Json workload = Json::object();
  workload.set("model", std::to_string(c0) + "->" + std::to_string(c1) + "->" +
                            std::to_string(c1) + "->" + std::to_string(c_out) +
                            " fc head (1x1 convs)");
  workload.set("requests_per_path", requests);
  root.set("workload", std::move(workload));
  root.set("hardware_concurrency", hw);
  root.set("kernel_backend", simd::backend_name());
  const auto emit = [](const char* mode, const SectionResult& s) {
    Json j = Json::object();
    j.set("mode", mode);
    j.set("recompile_s_per_req", s.recompile_s_per_req);
    j.set("compiled_s_per_req", s.compiled_s_per_req);
    j.set("speedup_compiled_vs_recompile_1t", s.speedup);
    j.set("bit_identical", s.bit_identical);
    return j;
  };
  if (!graph_only) {
    Json sections = Json::array();
    sections.push(emit("fp16+fp32acc", fp16));
    sections.push(emit("int8x8", int8));
    root.set("sections", std::move(sections));
    Json cj = Json::object();
    cj.set("threads", conc.threads);
    cj.set("requests", conc.requests);
    cj.set("requests_per_sec", conc.requests_per_sec);
    cj.set("latency_mean_s", conc.latency.mean_s);
    cj.set("latency_p50_s", conc.latency.p50_s);
    cj.set("latency_p95_s", conc.latency.p95_s);
    cj.set("latency_p99_s", conc.latency.p99_s);
    cj.set("bit_identical", conc.bit_identical);
    root.set("concurrent", std::move(cj));
  }
  Json gj = emit("graph-fp16", graph);
  gj.set("workload", "resnet18 residual block " + std::to_string(gc) + "ch @ " +
                         std::to_string(gdim) + "x" + std::to_string(gdim) +
                         ", identity skip, " + std::to_string(grequests) +
                         " requests");
  root.set("graph", std::move(gj));
  root.set("speedup_compiled_vs_recompile_1t", headline);
  root.set("bit_identical", all_identical);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << root.dump() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_identical ? 0 : 1;
}
