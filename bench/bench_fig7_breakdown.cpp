// Figure 7 reproduction: area and power breakdown of MC-IPU based tiles for
// adder-tree precisions {INT-only, 12, 16, 20, 24, 28, 38(NVDLA-like)}, for
// both the small (8-input) and big (16-input) tiles.  Components follow the
// paper's split: FAcc, WBuf, ShCNT (EHU), MULT, Shft, AT.
//
// §4.2 claims checked at the end:
//  (1) 38b -> 28b saves ~17% area / ~15% power;
//  (2) 38b -> 12b saves up to ~39% area;
//  (3) MC-IPU(12) costs ~43% more area than INT-only.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "model/hw_model.h"

namespace mpipu {
namespace {

void breakdown_table(bool big) {
  struct Row {
    std::string name;
    DesignConfig design;
  };
  std::vector<Row> rows;
  rows.push_back({"INT-only", int_only_design(big)});
  for (int w : {12, 16, 20, 24, 28}) {
    rows.push_back({"MC-IPU(" + std::to_string(w) + ")", proposed_design(w, big ? 64 : 32, big)});
  }
  {
    DesignConfig d = proposed_design(38, big ? 64 : 32, big);
    d.tile.datapath.multi_cycle = false;
    d.name = "38b (NVDLA-like)";
    rows.push_back({"38b (NVDLA-like)", d});
  }

  const double base_area = tile_gates(rows.back().design).total();
  const double base_power = tile_power(rows.back().design, true).total();

  bench::section(std::string(big ? "Big tile (16,16,2,2)" : "Small tile (8,8,2,2)") +
                 " -- AREA (fraction of tile, normalized to 38b total)");
  bench::Table at({"design", "MULT", "WBuf", "Shft", "AT", "FAcc", "ShCNT", "total",
                   "vs 38b"});
  for (const auto& r : rows) {
    const GateBreakdown g = tile_gates(r.design);
    at.add_row({r.name, bench::fmt(g.mult / base_area, 3), bench::fmt(g.wbuf / base_area, 3),
                bench::fmt(g.shifter / base_area, 3), bench::fmt(g.adder_tree / base_area, 3),
                bench::fmt(g.accumulator / base_area, 3), bench::fmt(g.ehu / base_area, 3),
                bench::fmt(g.total() / base_area, 3),
                bench::fmt_pct(g.total() / base_area - 1.0)});
  }
  at.print();

  bench::section(std::string(big ? "Big tile" : "Small tile") +
                 " -- POWER (FP mode, normalized to 38b total)");
  bench::Table pt({"design", "MULT", "WBuf", "Shft", "AT", "FAcc", "ShCNT", "total",
                   "vs 38b"});
  for (const auto& r : rows) {
    const GateBreakdown p = tile_power(r.design, true);
    pt.add_row({r.name, bench::fmt(p.mult / base_power, 3), bench::fmt(p.wbuf / base_power, 3),
                bench::fmt(p.shifter / base_power, 3), bench::fmt(p.adder_tree / base_power, 3),
                bench::fmt(p.accumulator / base_power, 3), bench::fmt(p.ehu / base_power, 3),
                bench::fmt(p.total() / base_power, 3),
                bench::fmt_pct(p.total() / base_power - 1.0)});
  }
  pt.print();
}

}  // namespace
}  // namespace mpipu

int main() {
  using namespace mpipu;
  bench::title("Figure 7: area & power breakdown of MC-IPU tiles");
  breakdown_table(/*big=*/false);
  breakdown_table(/*big=*/true);

  bench::section("Section 4.2 claim checks (big tile)");
  const double a38 = tile_gates(nvdla_like_design()).total();
  const double p38 = tile_power(nvdla_like_design(), true).total();
  const double a28 = tile_gates(proposed_design(28, 64)).total();
  const double p28 = tile_power(proposed_design(28, 64), true).total();
  const double a12 = tile_gates(proposed_design(12, 64)).total();
  const double aint = tile_gates(int_only_design()).total();
  std::printf("38b -> 28b area saving:  %5.1f%%   (paper: ~17%%)\n", 100.0 * (1.0 - a28 / a38));
  std::printf("38b -> 28b power saving: %5.1f%%   (paper: ~15%%)\n", 100.0 * (1.0 - p28 / p38));
  std::printf("38b -> 12b area saving:  %5.1f%%   (paper: up to 39%%)\n",
              100.0 * (1.0 - a12 / a38));
  std::printf("MC-IPU(12) vs INT-only:  +%4.1f%%   (paper: +43%%)\n",
              100.0 * (a12 / aint - 1.0));
  return 0;
}
