// Shared formatting helpers for the paper-reproduction benchmark harnesses.
// Each bench binary regenerates one table/figure of the paper and prints it
// as an aligned text table (plus CSV-ish rows easy to plot).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/percentile.h"

namespace mpipu::bench {

// The serving benches' latency digest: the shared nearest-rank
// implementation (common/percentile.h) re-exported under the bench
// namespace so every BENCH_*.json reports p50/p95/p99 from one definition.
using mpipu::LatencySummary;
using mpipu::percentile_nearest_rank_sorted;
using mpipu::summarize_latencies;

inline void title(const std::string& t) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n", t.c_str());
  std::printf("================================================================================\n");
}

inline void section(const std::string& t) { std::printf("\n--- %s ---\n", t.c_str()); }

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<size_t> width(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& r : rows_) {
      for (size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& r) {
      for (size_t c = 0; c < r.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(width[c]), r[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (size_t c = 0; c < headers_.size(); ++c) {
      rule += std::string(width[c], '-') + "  ";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt_sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

inline std::string fmt_pct(double v, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", prec, 100.0 * v);
  return buf;
}

/// Bit-exact tensor comparison -- the single definition of the identity
/// gate the perf benches pass/fail on (same geometry, exact double
/// equality, no tolerance).
template <typename TensorT>
bool tensors_identical(const TensorT& a, const TensorT& b) {
  if (a.c != b.c || a.h != b.h || a.w != b.w) return false;
  if (a.data.size() != b.data.size()) return false;
  for (size_t i = 0; i < a.data.size(); ++i) {
    if (a.data[i] != b.data[i]) return false;
  }
  return true;
}

}  // namespace mpipu::bench
