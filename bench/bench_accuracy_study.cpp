// §3.1 end-to-end accuracy study (the paper's ResNet Top-1 experiment,
// substituted per DESIGN.md): run a small CNN classifier with the
// bit-accurate IPU datapath at several IPU precisions and measure
//   * per-layer output agreement with the exact FP32-CPU reference, and
//   * Top-1 *agreement* (argmax match) over a batch of synthetic inputs.
//
// Paper claims to check: precision >= 12 keeps Top-1 identical to FP32 CPU;
// precision 8 mostly agrees on average but fluctuates per batch.
//
// Migrated onto the high-level API: the CNN (convs + ReLU/pool post-ops) is
// one Model, each precision point is one Session whose RunSpec carries the
// datapath, and run_batch over the image batch replaces the hand-wired
// per-image forward loops.  Results are also written to BENCH_accuracy.json
// through RunReport's JSON emitter (the repo's single JSON serializer).
//
//   ./bench_accuracy_study [--smoke]
//     --smoke: small batch / fewer precision points (CI perf trajectory)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/session.h"
#include "bench_util.h"

namespace mpipu {
namespace {

Model make_cnn(Rng& rng) {
  std::vector<ModelLayer> layers(4);
  ConvSpec pad1;
  pad1.pad = 1;
  layers[0] = {"conv1",
               random_filters(rng, 16, 3, 3, 3, ValueDist::kNormal, 0.25)
                   .rounded_to_fp16(),
               pad1, /*relu=*/true, PoolOp::kMax2};
  layers[1] = {"conv2",
               random_filters(rng, 32, 16, 3, 3, ValueDist::kNormal, 0.12)
                   .rounded_to_fp16(),
               pad1, /*relu=*/true, PoolOp::kMax2};
  layers[2] = {"conv3",
               random_filters(rng, 32, 32, 3, 3, ValueDist::kNormal, 0.09)
                   .rounded_to_fp16(),
               pad1, /*relu=*/true, PoolOp::kGlobalAvg};
  layers[3] = {"head",
               random_filters(rng, 10, 32, 1, 1, ValueDist::kNormal, 0.2)
                   .rounded_to_fp16(),
               ConvSpec{}, /*relu=*/false, PoolOp::kNone};
  return Model::from_layers("small-cnn", std::move(layers));
}

int argmax(const Tensor& logits) {
  int best = 0;
  for (int c = 1; c < logits.c; ++c) {
    if (logits.at(c, 0, 0) > logits.at(best, 0, 0)) best = c;
  }
  return best;
}

}  // namespace
}  // namespace mpipu

int main(int argc, char** argv) {
  using namespace mpipu;
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::title("Section 3.1 end-to-end study: CNN agreement vs IPU precision");
  if (smoke) std::printf("(smoke mode: reduced batch and precision sweep)\n");

  Rng rng(0xACC);
  const Model model = make_cnn(rng);
  const int batch = smoke ? 8 : 48;
  std::vector<Tensor> images;
  for (int i = 0; i < batch; ++i) {
    images.push_back(
        random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0).rounded_to_fp16());
  }

  // The exact FP32 reference depends only on (model, image): compute it once
  // here instead of once per precision point inside run().
  std::vector<Tensor> ref_logits;
  std::vector<int> ref_labels;
  for (const Tensor& img : images) {
    ref_logits.push_back(Session::reference(model, img));
    ref_labels.push_back(argmax(ref_logits.back()));
  }

  bench::Table t({"IPU precision", "Top-1 agreement", "logit SNR (dB)",
                  "FP16-mismatched logits"});
  Json doc = Json::object();
  doc.set("bench", "accuracy_study").set("batch", batch);
  Json points = Json::array();

  const std::vector<int> precisions =
      smoke ? std::vector<int>{8, 12, 28} : std::vector<int>{8, 10, 12, 16, 20, 28};
  for (const int precision : precisions) {
    // One RunSpec per precision point: the single-cycle truncating window
    // at IPU precision w == software precision, all layers FP16/FP32-accum.
    RunSpec spec;
    spec.datapath.scheme = DecompositionScheme::kTemporal;
    spec.datapath.n_inputs = 16;
    spec.datapath.adder_tree_width = precision;
    spec.datapath.software_precision = precision;
    spec.datapath.multi_cycle = false;
    spec.policy = PrecisionPolicy::all_fp16(AccumKind::kFp32);
    Session session(spec);

    RunOptions opts;
    opts.compare_reference = false;  // compared against the hoisted refs below
    const BatchRunReport result = session.run_batch(model, images, opts);
    int agree = 0;
    double snr_sum = 0.0;
    int64_t mismatched = 0, total_logits = 0;
    for (size_t i = 0; i < result.runs.size(); ++i) {
      const AgreementStats st =
          compare_outputs(result.runs[i].output, ref_logits[i]);
      agree += argmax(result.runs[i].output) == ref_labels[i];
      snr_sum += st.snr_db;
      mismatched += st.mismatched_fp16;
      total_logits += st.total;
    }
    const double top1 = static_cast<double>(agree) / batch;
    t.add_row({std::to_string(precision) + "b", bench::fmt_pct(top1, 1),
               bench::fmt(snr_sum / batch, 1),
               bench::fmt_pct(static_cast<double>(mismatched) /
                              static_cast<double>(total_logits))});

    // One entry per precision point, serialized through the report emitter
    // (totals + per-run layer stats/errors; tensors stay out of the file).
    Json point = Json::object();
    point.set("ipu_precision", precision)
        .set("top1_agreement", top1)
        .set("mean_logit_snr_db", snr_sum / batch)
        .set("mismatched_fp16_fraction",
             static_cast<double>(mismatched) / static_cast<double>(total_logits))
        .set("batch_report", result.to_json_value());
    points.push(std::move(point));
  }
  t.print();
  doc.set("points", std::move(points));

  const char* out_path = "BENCH_accuracy.json";
  if (FILE* f = std::fopen(out_path, "w")) {
    const std::string json = doc.dump(2);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nWrote %s (%zu bytes)\n", out_path, json.size() + 1);
  } else {
    std::fprintf(stderr, "WARNING: could not open %s for writing\n", out_path);
  }

  bench::section("Claim checks");
  std::printf("Paper: IPU precision >= 12 maintains FP32-CPU Top-1 for all batches;\n");
  std::printf("       precision 8 matches on average but fluctuates per batch.\n");
  return 0;
}
