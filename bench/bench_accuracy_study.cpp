// §3.1 end-to-end accuracy study (the paper's ResNet Top-1 experiment,
// substituted per DESIGN.md): run a small CNN classifier with the
// bit-accurate IPU datapath at several IPU precisions and measure
//   * per-layer output agreement with the exact FP32-CPU reference, and
//   * Top-1 *agreement* (argmax match) over a batch of synthetic inputs.
//
// Paper claims to check: precision >= 12 keeps Top-1 identical to FP32 CPU;
// precision 8 mostly agrees on average but fluctuates per batch.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "nn/conv.h"

namespace mpipu {
namespace {

struct SmallCnn {
  FilterBank conv1, conv2, conv3, head;  // head: 1x1 "dense" to 10 classes
};

SmallCnn make_cnn(Rng& rng) {
  SmallCnn net;
  net.conv1 = random_filters(rng, 16, 3, 3, 3, ValueDist::kNormal, 0.25).rounded_to_fp16();
  net.conv2 = random_filters(rng, 32, 16, 3, 3, ValueDist::kNormal, 0.12).rounded_to_fp16();
  net.conv3 = random_filters(rng, 32, 32, 3, 3, ValueDist::kNormal, 0.09).rounded_to_fp16();
  net.head = random_filters(rng, 10, 32, 1, 1, ValueDist::kNormal, 0.2).rounded_to_fp16();
  return net;
}

template <typename ConvFn>
Tensor forward(const SmallCnn& net, const Tensor& img, ConvFn&& conv) {
  ConvSpec pad1;
  pad1.pad = 1;
  Tensor x = maxpool2(relu(conv(img, net.conv1, pad1)));
  x = maxpool2(relu(conv(x, net.conv2, pad1)));
  x = relu(conv(x, net.conv3, pad1));
  // Global average pool then the 1x1 head.
  Tensor pooled(x.c, 1, 1);
  for (int c = 0; c < x.c; ++c) {
    double s = 0.0;
    for (int y = 0; y < x.h; ++y) {
      for (int xx = 0; xx < x.w; ++xx) s += x.at(c, y, xx);
    }
    pooled.at(c, 0, 0) = s / (x.h * x.w);
  }
  return conv(pooled, net.head, ConvSpec{});
}

int argmax(const Tensor& logits) {
  int best = 0;
  for (int c = 1; c < logits.c; ++c) {
    if (logits.at(c, 0, 0) > logits.at(best, 0, 0)) best = c;
  }
  return best;
}

}  // namespace
}  // namespace mpipu

int main() {
  using namespace mpipu;
  bench::title("Section 3.1 end-to-end study: CNN agreement vs IPU precision");

  Rng rng(0xACC);
  const SmallCnn net = make_cnn(rng);
  const int batch = 48;
  std::vector<Tensor> images;
  for (int i = 0; i < batch; ++i) {
    images.push_back(
        random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0).rounded_to_fp16());
  }

  // Reference forward passes (exact double arithmetic on FP16 weights/inputs).
  std::vector<int> ref_labels;
  std::vector<Tensor> ref_logits;
  for (const auto& img : images) {
    ref_logits.push_back(forward(net, img, [](const Tensor& x, const FilterBank& f,
                                              const ConvSpec& s) {
      return conv_reference(x, f, s);
    }));
    ref_labels.push_back(argmax(ref_logits.back()));
  }

  bench::Table t({"IPU precision", "Top-1 agreement", "logit SNR (dB)",
                  "FP16-mismatched logits"});
  for (int precision : {8, 10, 12, 16, 20, 28}) {
    IpuConfig cfg;
    cfg.n_inputs = 16;
    cfg.adder_tree_width = precision;
    cfg.software_precision = precision;
    cfg.multi_cycle = false;
    int agree = 0;
    double snr_sum = 0.0;
    int64_t mismatched = 0, total_logits = 0;
    for (int i = 0; i < batch; ++i) {
      const Tensor logits =
          forward(net, images[static_cast<size_t>(i)],
                  [&](const Tensor& x, const FilterBank& f, const ConvSpec& s) {
                    return conv_ipu_fp16(x, f, s, cfg, AccumKind::kFp32);
                  });
      agree += argmax(logits) == ref_labels[static_cast<size_t>(i)];
      const AgreementStats st = compare_outputs(logits, ref_logits[static_cast<size_t>(i)]);
      snr_sum += st.snr_db;
      mismatched += st.mismatched_fp16;
      total_logits += st.total;
    }
    t.add_row({std::to_string(precision) + "b",
               bench::fmt_pct(static_cast<double>(agree) / batch, 1),
               bench::fmt(snr_sum / batch, 1),
               bench::fmt_pct(static_cast<double>(mismatched) /
                              static_cast<double>(total_logits))});
  }
  t.print();

  bench::section("Claim checks");
  std::printf("Paper: IPU precision >= 12 maintains FP32-CPU Top-1 for all batches;\n");
  std::printf("       precision 8 matches on average but fluctuates per batch.\n");
  return 0;
}
