// Google-benchmark microbenchmarks of the emulation library itself: how fast
// the bit-accurate models run on the host (useful when scaling simulations).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "core/ipu.h"
#include "core/reference.h"
#include "sim/cycle_sim.h"

namespace mpipu {
namespace {

std::vector<Fp16> fp16_vec(Rng& rng, int n) {
  std::vector<Fp16> v;
  for (int i = 0; i < n; ++i) v.push_back(Fp16::from_double(rng.normal(0.0, 1.0)));
  return v;
}

void BM_Fp16FromDouble(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> vals;
  for (int i = 0; i < 1024; ++i) vals.push_back(rng.normal(0.0, 1.0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fp16::from_double(vals[i++ & 1023]));
  }
}
BENCHMARK(BM_Fp16FromDouble);

void BM_ExactReferenceInnerProduct(benchmark::State& state) {
  Rng rng(2);
  const auto n = static_cast<int>(state.range(0));
  const auto a = fp16_vec(rng, n), b = fp16_vec(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_fp_inner_product<kFp16Format>(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExactReferenceInnerProduct)->Arg(8)->Arg(16)->Arg(64);

void BM_IpuFpAccumulate(benchmark::State& state) {
  Rng rng(3);
  IpuConfig cfg;
  cfg.n_inputs = static_cast<int>(state.range(0));
  cfg.adder_tree_width = static_cast<int>(state.range(1));
  cfg.software_precision = 28;
  Ipu ipu(cfg);
  const auto a = fp16_vec(rng, cfg.n_inputs), b = fp16_vec(rng, cfg.n_inputs);
  for (auto _ : state) {
    ipu.reset_accumulator();
    benchmark::DoNotOptimize(ipu.fp_accumulate<kFp16Format>(a, b));
  }
  state.SetItemsProcessed(state.iterations() * cfg.n_inputs);
}
BENCHMARK(BM_IpuFpAccumulate)->Args({8, 12})->Args({16, 12})->Args({16, 28})->Args({16, 38});

void BM_IpuIntAccumulate(benchmark::State& state) {
  Rng rng(4);
  IpuConfig cfg;
  cfg.n_inputs = 16;
  Ipu ipu(cfg);
  std::vector<int32_t> a, b;
  for (int i = 0; i < 16; ++i) {
    a.push_back(static_cast<int32_t>(rng.uniform_int(-8, 7)));
    b.push_back(static_cast<int32_t>(rng.uniform_int(-8, 7)));
  }
  const auto bits = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ipu.reset_accumulator();
    benchmark::DoNotOptimize(ipu.int_accumulate(a, b, bits, bits));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_IpuIntAccumulate)->Arg(4)->Arg(8);

void BM_EhuRun(benchmark::State& state) {
  Rng rng(5);
  const auto n = static_cast<size_t>(state.range(0));
  std::vector<Decoded> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i].exp = static_cast<int>(rng.uniform_int(-14, 15));
    b[i].exp = static_cast<int>(rng.uniform_int(-14, 15));
    a[i].magnitude = b[i].magnitude = 1024;
  }
  EhuOptions opts;
  opts.software_precision = 28;
  opts.safe_precision = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_ehu(a, b, opts));
  }
}
BENCHMARK(BM_EhuRun)->Arg(8)->Arg(16);

void BM_CycleSimLayer(benchmark::State& state) {
  Network net;
  net.name = "bench";
  net.tensor_stats = forward_stats();
  ConvLayer l;
  l.name = "L";
  l.cin = l.cout = 128;
  l.kh = l.kw = 3;
  l.hout = l.wout = 14;
  net.layers = {l};
  SimOptions opts;
  opts.sampled_steps = static_cast<int>(state.range(0));
  const TileConfig tile = big_tile(16, 28, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_network(net, tile, opts));
  }
}
BENCHMARK(BM_CycleSimLayer)->Arg(100)->Arg(400);

}  // namespace
}  // namespace mpipu

BENCHMARK_MAIN();
