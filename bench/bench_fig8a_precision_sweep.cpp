// Figure 8(a) reproduction: normalized execution time of MC-IPU tiles vs
// adder-tree precision, for ResNet-18/50 and InceptionV3 forward paths and
// the ResNet-18 backward path, with FP32 accumulation (28b software
// precision).  8-input tiles normalize to Baseline1, 16-input to Baseline2.
//
// Also reproduces the §4.3 FP16-accumulation numbers: with 16b software
// precision, MC-IPU(12) loses ~47%/50% performance without clustering and
// ~26%/38% with clusters of one.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/cycle_sim.h"

namespace mpipu {
namespace {

double normalized_time(const Network& net, const TileConfig& tile,
                       const TileConfig& baseline, const SimOptions& opts) {
  return simulate_network(net, tile, opts).normalized_to(
      simulate_network(net, baseline, opts));
}

void sweep(bool big, int software_precision, const SimOptions& opts) {
  const auto nets = paper_study_cases();
  const TileConfig base = big ? baseline2() : baseline1();
  bench::section(std::string(big ? "16-input MC-IPUs (vs Baseline2)"
                                 : "8-input MC-IPUs (vs Baseline1)") +
                 ", software precision " + std::to_string(software_precision) + "b" +
                 (software_precision >= 28 ? " (FP32 accumulation)" : " (FP16 accumulation)"));
  bench::Table t({"precision", "resnet18-fwd", "resnet50-fwd", "inceptionv3-fwd",
                  "resnet18-bwd (backward)"});
  for (int w : {12, 14, 16, 20, 24, 28}) {
    if (w - 9 < 1) continue;
    std::vector<std::string> row = {std::to_string(w) + "b"};
    for (const auto& net : nets) {
      // No clustering (whole tile in lockstep), as in Fig. 8(a).
      const TileConfig tile =
          big ? big_tile(w, software_precision, 64) : small_tile(w, software_precision, 32);
      row.push_back(bench::fmt(normalized_time(net, tile, base, opts), 2) + "x");
    }
    t.add_row(std::move(row));
  }
  t.print();
}

}  // namespace
}  // namespace mpipu

int main() {
  using namespace mpipu;
  bench::title("Figure 8(a): normalized execution time vs MC-IPU precision");
  SimOptions opts;
  opts.sampled_steps = 600;

  sweep(/*big=*/false, /*software_precision=*/28, opts);
  sweep(/*big=*/true, /*software_precision=*/28, opts);

  bench::title("Section 4.3: FP16 accumulation (16b software precision), MC-IPU(12)");
  const auto nets = paper_study_cases();
  for (bool big : {false, true}) {
    const TileConfig base = big ? baseline2() : baseline1();
    double no_cluster = 0.0, cluster1 = 0.0;
    int count = 0;
    // Forward workloads (the paper's FP16-accumulation inference numbers).
    for (const auto& net : nets) {
      if (net.name == "resnet18-bwd") continue;
      const TileConfig whole = big ? big_tile(12, 16, 64) : small_tile(12, 16, 32);
      const TileConfig solo = big ? big_tile(12, 16, 1) : small_tile(12, 16, 1);
      no_cluster += normalized_time(net, whole, base, opts);
      cluster1 += normalized_time(net, solo, base, opts);
      ++count;
    }
    // The paper reports *performance* drops: a 47% throughput drop is a
    // 1/(1-0.47) = 1.89x execution-time ratio.
    std::printf("%s: MC-IPU(12) time ratio, no clustering: %.2fx -> perf drop %.0f%%  "
                "(paper: %s drop = %.2fx)\n",
                big ? "16-input" : "8-input", no_cluster / count,
                100.0 * (1.0 - count / no_cluster), big ? "50%" : "47%",
                big ? 1.0 / 0.50 : 1.0 / 0.53);
    std::printf("%s: MC-IPU(12) time ratio, cluster of 1:  %.2fx -> perf drop %.0f%%  "
                "(paper: %s drop = %.2fx)\n",
                big ? "16-input" : "8-input", cluster1 / count,
                100.0 * (1.0 - count / cluster1), big ? "38%" : "26%",
                big ? 1.0 / 0.62 : 1.0 / 0.74);
  }
  return 0;
}
